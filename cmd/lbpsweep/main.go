// Command lbpsweep regenerates the paper's figures and tables.
//
// Usage:
//
//	lbpsweep [-insts N] [-quick] [-workers N] [-checkpoint file] [-list] [experiment ids...]
//	lbpsweep -cpistack [-scheme name] [-insts N] [-quick]
//	lbpsweep -trace-events file -workload name [-scheme name] [-insts N] [-seed N]
//
// Without arguments it runs every experiment (table1 … fig14b, ext*) in
// paper order; results for configurations shared between experiments are
// computed once, and workload runs within a configuration fan out across
// -workers goroutines (GOMAXPROCS by default; results are deterministic in
// the worker count). With -quick the reduced, category-balanced workload
// subset is used.
//
// With -checkpoint, completed experiment outputs are flushed to the given
// JSON file after each experiment; rerunning the same sweep (same -insts /
// -warmup / -quick) skips completed experiments and replays their stored
// output, so an interrupted sweep resumes instead of restarting.
//
// Observability modes:
//
//   - -cpistack prints a CPI stack (cycle-accounting breakdown) for one
//     representative workload per category under -scheme (default the
//     paper's forward-coalesce). Attribution is audited: every cycle lands
//     in exactly one bucket and the buckets must sum to total cycles.
//   - -trace-events runs -workload under -scheme with the structured event
//     tracer and writes the retained events as JSONL.
//   - -pprof DIR profiles the process: cpu.pprof and heap.pprof plus a
//     runtime-metrics dump (runtime/metrics) land in DIR.
//
// A workload run that panics or stops making forward progress is isolated
// into a structured failure: the sweep completes, the affected experiment
// reports N/M failed runs, and the failures are listed after its output.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strings"
	"time"

	"localbp/internal/harness"
	"localbp/internal/obs"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

func main() { os.Exit(run()) }

// run is main with an exit code: deferred cleanups (profile flushes) must
// execute before the process exits, so nothing below calls os.Exit.
func run() int {
	insts := flag.Int("insts", 300_000, "instructions simulated per workload")
	warmup := flag.Int("warmup", 0, "leading retired instructions excluded from statistics")
	quick := flag.Bool("quick", false, "use the reduced workload subset")
	workers := flag.Int("workers", 0, "concurrent workload runs per configuration (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "JSON file for checkpoint/resume of completed experiments")
	auditSample := flag.Int("audit-sample", 0, "run the integrity auditor + golden model on every Nth workload per spec (0 = off)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	verbose := flag.Bool("v", false, "print per-configuration progress")
	schemeName := flag.String("scheme", "forward-coalesce", "scheme for -cpistack / -trace-events (see internal/schemes)")
	workload := flag.String("workload", "", "workload for -trace-events")
	seed := flag.Int64("seed", 0, "override the workload's trace-generation seed for -trace-events (0 = workload default)")
	cpistack := flag.Bool("cpistack", false, "print the per-category CPI-stack table instead of running experiments")
	traceEvents := flag.String("trace-events", "", "write one run's structured events as JSONL to this file (requires -workload)")
	pprofDir := flag.String("pprof", "", "write cpu.pprof, heap.pprof and a runtime-metrics dump to this directory")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *pprofDir != "" {
		stop, err := startProfiles(*pprofDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			return 2
		}
		defer stop()
	}

	opts := harness.Options{Insts: *insts, Quick: *quick, Warmup: *warmup, Workers: *workers,
		AuditSample: *auditSample}

	if *cpistack {
		out, err := harness.CPIStackTable(opts, *schemeName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			return 2
		}
		fmt.Printf("CPI stacks, %d instructions per workload, scheme %s:\n%s", *insts, *schemeName, out)
		return 0
	}

	if *traceEvents != "" {
		if err := traceOneRun(opts, *workload, *schemeName, *seed, *traceEvents); err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			return 2
		}
		return 0
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	// Validate every experiment id before running anything: a typo must
	// surface immediately and completely, not hours into a sweep.
	var unknown []string
	for _, id := range ids {
		if _, ok := harness.ExperimentByID(id); !ok {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "lbpsweep: unknown experiment ids: %s (use -list)\n",
			strings.Join(unknown, ", "))
		return 2
	}

	var ck *harness.Checkpoint
	if *checkpoint != "" {
		loaded, err := harness.LoadCheckpoint(*checkpoint)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			return 2
		}
		ck = loaded
		if ck == nil {
			ck = harness.NewCheckpoint(opts)
		} else if !ck.Matches(opts) {
			fmt.Fprintf(os.Stderr,
				"lbpsweep: checkpoint %s was written with -insts %d -warmup %d -quick %v; rerun with those flags or delete it\n",
				*checkpoint, ck.Insts, ck.Warmup, ck.Quick)
			return 2
		}
	}

	r := harness.NewRunner(opts)
	if *verbose {
		r.Log = os.Stderr
	}
	suite := "full suite (202 workloads)"
	if *quick {
		suite = "quick suite (50 workloads)"
	}
	fmt.Printf("lbpsweep: %s, %d instructions per workload\n\n", suite, *insts)

	exitCode := 0
	reported := 0 // failures already attributed to earlier experiments
	for _, id := range ids {
		e, _ := harness.ExperimentByID(id)
		if ck != nil {
			if done, ok := ck.Done(id); ok {
				fmt.Printf("== %s — %s (%.1fs)\n%s\n", e.ID, e.Title, done.Seconds, done.Output)
				continue
			}
		}
		t0 := time.Now()
		out, err := e.Run(r)
		secs := time.Since(t0).Seconds()
		if err != nil {
			// Aggregation failed (for example mismatched result sets after a
			// partial sweep): skip this artifact, keep the sweep going.
			fmt.Fprintf(os.Stderr, "lbpsweep: %s failed: %v\n", e.ID, err)
			exitCode = 1
			continue
		}

		// Graceful degradation: failures recorded during this experiment
		// (its own fresh specs; memoized specs reported where first run)
		// are appended to the experiment's output so they persist through
		// checkpoints and resumes.
		failures := r.Failures()
		if fresh := failures[reported:]; len(fresh) > 0 {
			var b strings.Builder
			fmt.Fprintf(&b, "!! %d workload run(s) failed; aggregates above cover the remaining runs:\n", len(fresh))
			for _, f := range fresh {
				fmt.Fprintf(&b, "!!   %s × %s [%s]: %s\n", f.Workload, f.SpecLabel, f.Phase, firstLine(f.Err.Error()))
			}
			out += "\n" + b.String()
			reported = len(failures)
			exitCode = 1
		}

		fmt.Printf("== %s — %s (%.1fs)\n%s\n", e.ID, e.Title, secs, out)

		if ck != nil {
			ck.Record(id, harness.ExperimentOutcome{Output: out, Seconds: secs})
			if err := ck.Save(*checkpoint); err != nil {
				fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
				return 2
			}
		}
	}
	return exitCode
}

// traceOneRun simulates one workload under one scheme with the event tracer
// attached and writes the retained events as JSONL.
func traceOneRun(o harness.Options, workload, schemeName string, seed int64, path string) error {
	if workload == "" {
		return fmt.Errorf("-trace-events requires -workload (see lbptrace -list)")
	}
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	if seed != 0 {
		w.Seed = seed
	}
	spec, err := harness.SpecFor(schemeName)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	spec.Obs = &harness.ObsSpec{TraceCap: 1 << 16, Done: func(h *obs.Hooks) { tracer = h.Tracer }}
	tr := w.Generate(o.Insts)
	if err := trace.Validate(tr); err != nil {
		return err
	}
	st, _, err := harness.RunTraceChecked(tr, spec)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	labels := map[string]string{
		"workload": w.Name,
		"scheme":   schemeName,
		"insts":    fmt.Sprint(o.Insts),
	}
	if err := tracer.WriteJSONL(f, labels); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s × %s: %d cycles, IPC %.3f, MPKI %.3f\n",
		w.Name, schemeName, st.Cycles, st.IPC(), st.MPKI())
	fmt.Printf("wrote %s (%d events emitted, %d retained)\n",
		path, tracer.Total(), len(tracer.Events()))
	return nil
}

// startProfiles begins CPU profiling into dir and returns the stop hook
// that also captures a heap profile and a runtime/metrics dump.
func startProfiles(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()

		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err == nil {
			runtime.GC() // up-to-date allocation statistics
			pprof.WriteHeapProfile(heap)
			heap.Close()
		}

		if f, err := os.Create(filepath.Join(dir, "runtime-metrics.txt")); err == nil {
			writeRuntimeMetrics(f)
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "lbpsweep: profiles written to %s\n", dir)
	}, nil
}

// writeRuntimeMetrics dumps every runtime/metrics sample in name-sorted
// order (the package returns descriptions pre-sorted by name).
func writeRuntimeMetrics(f *os.File) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(f, "%-60s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(f, "%-60s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var n uint64
			for _, c := range h.Counts {
				n += c
			}
			fmt.Fprintf(f, "%-60s histogram, %d samples\n", s.Name, n)
		}
	}
}

// firstLine truncates multi-line error text (stall dumps, panic stacks) for
// the per-experiment failure summary; full detail reaches stderr with -v.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
