// Command lbpsweep regenerates the paper's figures and tables.
//
// Usage:
//
//	lbpsweep [-insts N] [-quick] [-list] [experiment ids...]
//
// Without arguments it runs every experiment (table1 … fig14b) in paper
// order; results for configurations shared between experiments are computed
// once. With -quick the reduced, category-balanced workload subset is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"localbp/internal/harness"
)

func main() {
	insts := flag.Int("insts", 300_000, "instructions simulated per workload")
	warmup := flag.Int("warmup", 0, "leading retired instructions excluded from statistics")
	quick := flag.Bool("quick", false, "use the reduced workload subset")
	list := flag.Bool("list", false, "list experiment ids and exit")
	verbose := flag.Bool("v", false, "print per-configuration progress")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	r := harness.NewRunner(harness.Options{Insts: *insts, Quick: *quick, Warmup: *warmup})
	if *verbose {
		r.Log = os.Stderr
	}
	suite := "full suite (202 workloads)"
	if *quick {
		suite = "quick suite (50 workloads)"
	}
	fmt.Printf("lbpsweep: %s, %d instructions per workload\n\n", suite, *insts)

	for _, id := range ids {
		e, ok := harness.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "lbpsweep: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		t0 := time.Now()
		out := e.Run(r)
		fmt.Printf("== %s — %s (%.1fs)\n%s\n", e.ID, e.Title, time.Since(t0).Seconds(), out)
	}
}
