package main

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"localbp/internal/shard"
)

// runSweepOK runs the built binary with args, failing the test on a non-zero
// exit, and returns stdout.
func runSweepOK(t *testing.T, bin string, args ...string) string {
	t.Helper()
	var out, errs strings.Builder
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &out, &errs
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %s: %v\nstdout:\n%s\nstderr:\n%s", bin, strings.Join(args, " "), err, out.String(), errs.String())
	}
	return out.String()
}

// TestShardSweepChaosKillBitIdentical is the tentpole acceptance test: a
// sharded quick sweep whose busiest worker is SIGKILLed mid-shard must have
// that shard reassigned after lease expiry and still complete with zero lost
// and zero duplicated results — the merged canonical output is bit-identical
// to a single-process sweep of the same experiments. This is also the body
// of `make shard-smoke`.
func TestShardSweepChaosKillBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bin := buildSweep(t)
	dir := t.TempDir()
	lease := filepath.Join(dir, "fleet")
	ids := []string{"table1", "table2", "fig4", "fig7a", "fig8", "fig9", "fig10", "ext1"}
	const n = 3

	// Kill the shard owning the most experiments: the chaos SIGKILL lands
	// after its first checkpoint flush with work still pending, so the
	// successor provably resumes a partial shard rather than replaying a
	// finished one.
	victim, best := 0, -1
	for k := 0; k < n; k++ {
		if c := len(shard.Assigned(ids, k, n)); c > best {
			victim, best = k, c
		}
	}
	if best < 2 {
		t.Fatalf("victim shard owns %d experiments; want >= 2 for a meaningful resume", best)
	}

	common := []string{"-quick", "-insts", "12000", "-workers", "2"}
	coord := append([]string{
		"-shards", fmt.Sprint(n), "-lease-dir", lease,
		"-lease-ttl", "1s", "-lease-heartbeat", "100ms",
		"-chaos-kill", fmt.Sprint(victim),
	}, common...)
	coord = append(coord, ids...)

	var out, errs strings.Builder
	cmd := exec.Command(bin, coord...)
	cmd.Stdout, cmd.Stderr = &out, &errs
	if err := cmd.Run(); err != nil {
		t.Fatalf("coordinator failed: %v\nstderr:\n%s", err, errs.String())
	}
	for _, want := range []string{
		"chaos: SIGKILLing worker mid-shard", // the fault landed
		"reassigning",                        // lease expired, shard handed over
		"ok: 3/3 shards ok",                  // every shard still completed
	} {
		if !strings.Contains(errs.String(), want) {
			t.Fatalf("coordinator stderr lacks %q:\n%s", want, errs.String())
		}
	}

	merged := runSweepOK(t, bin,
		append([]string{"-merge", "-shards", fmt.Sprint(n), "-lease-dir", lease}, ids...)...)

	// Differential gate: a single-process sweep of the same experiments,
	// rendered the same canonical way, must be bit-identical.
	single := filepath.Join(dir, "single.ckpt")
	runSweepOK(t, bin, append(append([]string{"-checkpoint", single}, common...), ids...)...)
	ref := runSweepOK(t, bin, append([]string{"-merge", "-checkpoint", single}, ids...)...)
	if merged != ref {
		t.Fatalf("merged shard output diverges from the single-process sweep\nmerged:\n%s\nsingle:\n%s", merged, ref)
	}

	// Exactly-once, spelled out: every experiment's banner appears once.
	for _, id := range ids {
		if c := strings.Count(merged, "== "+id+" "); c != 1 {
			t.Fatalf("experiment %s appears %d times in the merged output, want 1", id, c)
		}
	}
}

// TestShardWorkerLeaseHeld: a worker refused by a live lease exits 4
// (resumable), so a supervising coordinator classifies it transient and
// retries after the incumbent expires — never two workers on one shard.
func TestShardWorkerLeaseHeld(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bin := buildSweep(t)
	dir := t.TempDir()
	if _, err := shard.Acquire(dir, 0, 2, "incumbent", time.Minute); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-shard", "0/2", "-lease-dir", dir, "-quick", "-insts", "5000", "table1")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 4 {
		t.Fatalf("worker against a held lease exited %d, want 4\n%s", code, out)
	}
	if !strings.Contains(string(out), "lease") {
		t.Fatalf("worker did not explain the refusal:\n%s", out)
	}
}

// TestSweepDeadlineExit4: -deadline bounds the whole invocation's wall
// clock; on expiry the sweep exits 4 like SIGINT, with completed work
// checkpointed for resume.
func TestSweepDeadlineExit4(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bin := buildSweep(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	// The full suite at this budget runs for minutes; the deadline cuts it
	// off in under a second.
	cmd := exec.Command(bin, "-insts", "300000", "-deadline", "500ms", "-checkpoint", ckpt)
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 4 {
		t.Fatalf("deadline-bounded sweep exited %d, want 4\n%s", code, out)
	}
	if !strings.Contains(string(out), "interrupted") {
		t.Fatalf("deadline expiry not reported as interruption:\n%s", out)
	}
}
