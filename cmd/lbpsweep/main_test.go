package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"localbp/internal/harness"
)

// buildSweep compiles the lbpsweep binary into a temp dir once per test.
func buildSweep(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "lbpsweep")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSweepSIGINTResume is the crash-safety acceptance test: a live sweep is
// interrupted with SIGINT mid-run, must exit with the interrupted code (4)
// leaving a valid checkpoint, and a rerun of the same command must resume —
// replaying every completed experiment verbatim, losing none, duplicating
// none — and finish with exit 0.
func TestSweepSIGINTResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bin := buildSweep(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.ckpt")
	ids := []string{"table1", "table2", "fig4", "fig7a", "fig8", "fig9"}
	args := append([]string{"-quick", "-insts", "60000", "-workers", "2", "-checkpoint", ckpt}, ids...)

	var out1, err1 strings.Builder
	first := exec.Command(bin, args...)
	first.Stdout, first.Stderr = &out1, &err1
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait until at least one experiment has been checkpointed (the static
	// tables complete almost immediately), then interrupt mid-sweep.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			first.Process.Kill()
			t.Fatalf("checkpoint never appeared; stdout:\n%s\nstderr:\n%s", out1.String(), err1.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := first.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	werr := first.Wait()
	code := first.ProcessState.ExitCode()
	if code == 0 {
		// The whole sweep finished before the signal landed; the resume path
		// can't be exercised this round.
		t.Skipf("sweep completed before SIGINT landed (exit 0); stderr:\n%s", err1.String())
	}
	if code != 4 {
		t.Fatalf("interrupted sweep exited %d (%v), want 4\nstdout:\n%s\nstderr:\n%s",
			code, werr, out1.String(), err1.String())
	}
	if !strings.Contains(err1.String(), "interrupted") {
		t.Fatalf("stderr does not report interruption:\n%s", err1.String())
	}

	// The checkpoint left behind must be valid and partial.
	ck, err := harness.LoadCheckpoint(ckpt)
	if err != nil || ck == nil {
		t.Fatalf("post-SIGINT checkpoint unreadable: (%v, %v)", ck, err)
	}
	before := map[string]harness.ExperimentOutcome{}
	for _, id := range ids {
		if o, ok := ck.Done(id); ok {
			before[id] = o
		}
	}
	if len(before) == 0 || len(before) == len(ids) {
		t.Fatalf("checkpoint has %d/%d experiments; want a strict partial", len(before), len(ids))
	}

	// Resume: the same command must replay completed experiments and finish
	// the rest.
	var out2, err2 strings.Builder
	second := exec.Command(bin, args...)
	second.Stdout, second.Stderr = &out2, &err2
	if err := second.Run(); err != nil {
		t.Fatalf("resumed sweep failed (%v)\nstdout:\n%s\nstderr:\n%s", err, out2.String(), err2.String())
	}

	// Zero lost results: every previously completed output replays verbatim.
	for id, o := range before {
		if !strings.Contains(out2.String(), o.Output) {
			t.Fatalf("resumed sweep lost the checkpointed output of %s", id)
		}
	}
	// Zero duplicated results: each experiment's banner appears exactly once.
	for _, id := range ids {
		banner := "== " + id + " "
		if n := strings.Count(out2.String(), banner); n != 1 {
			t.Fatalf("experiment %s ran %d times in the resumed sweep, want 1\nstdout:\n%s",
				id, n, out2.String())
		}
	}

	// The final checkpoint holds every experiment, with the pre-interrupt
	// outcomes untouched.
	ck, err = harness.LoadCheckpoint(ckpt)
	if err != nil || ck == nil {
		t.Fatalf("final checkpoint unreadable: (%v, %v)", ck, err)
	}
	for _, id := range ids {
		o, ok := ck.Done(id)
		if !ok {
			t.Fatalf("experiment %s missing from the final checkpoint", id)
		}
		if prev, was := before[id]; was && prev.Output != o.Output {
			t.Fatalf("resume rewrote the completed output of %s", id)
		}
	}
}

// TestSweepExitCodeConfigError: unknown experiment ids exit 2 before any
// simulation.
func TestSweepExitCodeConfigError(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bin := buildSweep(t)
	cmd := exec.Command(bin, "-quick", "-insts", "5000", "definitely-not-an-experiment")
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 2 {
		t.Fatalf("unknown id exited %d, want 2\n%s", code, out)
	}
}

// TestSweepChaosGate: with -inject transient and a covering -retries budget,
// a quick sweep completes 100% (exit 0) and reports no failures.
func TestSweepChaosGate(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess integration test")
	}
	bin := buildSweep(t)
	cmd := exec.Command(bin, "-quick", "-insts", "20000",
		"-inject", "transient", "-retries", "3", "table1", "fig4")
	out, err := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != 0 || err != nil {
		t.Fatalf("chaos-injected sweep exited %d (%v)\n%s", code, err, out)
	}
	if strings.Contains(string(out), "!!") {
		t.Fatalf("chaos-injected sweep reported failures despite covering retry budget:\n%s", out)
	}
}
