// Sharded sweep modes: worker (-shard k/N), coordinator (-shards N) and
// merge (-merge). The partition is a pure function of (experiment id, N), so
// any process — this coordinator, one on another machine, an operator's
// shell — computes identical shard assignments; coordination happens only
// through the lease journals and per-shard checkpoints in -lease-dir. See
// DESIGN.md §15 for the protocol.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"localbp/internal/harness"
	"localbp/internal/service"
	"localbp/internal/shard"
)

// shardFlags carries the sharding knobs out of flag parsing.
type shardFlags struct {
	spec       string        // -shard k/N (worker mode)
	shards     int           // -shards N (coordinator mode; also -merge's N)
	merge      bool          // -merge
	dir        string        // -lease-dir
	ttl        time.Duration // -lease-ttl
	heartbeat  time.Duration // -lease-heartbeat (0 = ttl/4)
	attempts   int           // -shard-attempts
	parallel   int           // -shard-parallel
	chaosKill  int           // -chaos-kill (negative = off)
	mergeOut   string        // -merge-out
	checkpoint string        // -checkpoint (single-file render for -merge)
}

// expandIDs resolves the experiment selection: explicit args validated
// up-front (a typo must fail the whole fleet immediately, not strand one
// shard), or every experiment in paper order.
func expandIDs(args []string) ([]string, error) {
	if len(args) == 0 {
		var ids []string
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
		return ids, nil
	}
	for _, id := range args {
		if _, ok := harness.ExperimentByID(id); !ok {
			return nil, fmt.Errorf("unknown experiment id %q (use -list)", id)
		}
	}
	return args, nil
}

// runShardWorker is `lbpsweep -shard k/N`: acquire the shard's lease, sweep
// the experiments the partition assigns to shard k into the per-shard
// checkpoint, heartbeat while working, release on exit. Respawn-after-death
// is someone else's job (the coordinator, cron, an operator); the worker's
// whole contract is the lease protocol plus the checkpoint.
func runShardWorker(ctx context.Context, sf shardFlags, opts harness.Options, args []string, verbose bool) int {
	k, n, err := shard.ParseSpec(sf.spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return service.ExitConfigError
	}
	if sf.dir == "" {
		fmt.Fprintln(os.Stderr, "lbpsweep: -shard requires -lease-dir")
		return service.ExitConfigError
	}
	ids, err := expandIDs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return service.ExitConfigError
	}
	if err := os.MkdirAll(sf.dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return service.ExitFailure
	}

	l, err := shard.Acquire(sf.dir, k, n, shard.Owner(), sf.ttl)
	if errors.Is(err, shard.ErrLeaseHeld) {
		// Another worker is live on this shard. Exit 4 (interrupted — the
		// work is resumable) so a supervising coordinator classifies the
		// exit transient and retries once the incumbent's lease expires.
		fmt.Fprintf(os.Stderr, "lbpsweep: shard %d/%d: %v\n", k, n, err)
		return service.ExitCanceled
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: shard %d/%d: %v\n", k, n, err)
		return service.ExitFailure
	}

	assigned := shard.Assigned(ids, k, n)
	if len(assigned) == 0 {
		// More shards than work. Never fall through to RunSweep here: an
		// empty id list there means "every experiment".
		fmt.Printf("lbpsweep: shard %d/%d: no assigned experiments\n", k, n)
		l.Release()
		return service.ExitOK
	}

	hb := sf.heartbeat
	if hb <= 0 {
		hb = sf.ttl / 4
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var lost atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		l.Heartbeat(hctx, hb, func(error) {
			// Fenced: a successor owns the shard now. Stop sweeping within
			// one cancellation stride so this zombie cannot race the
			// successor's checkpoint writes.
			lost.Store(true)
			cancel()
		})
	}()

	fmt.Printf("lbpsweep: shard %d/%d (lease epoch %d): %d experiment(s): %s\n",
		k, n, l.Epoch(), len(assigned), strings.Join(assigned, " "))
	cfg := service.SweepConfig{
		Opts:       opts,
		IDs:        assigned,
		Checkpoint: shard.CheckpointPath(sf.dir, k, n),
		Out:        os.Stdout,
		Errs:       os.Stderr,
	}
	if verbose {
		cfg.Log = os.Stderr
	}
	rep, rerr := service.RunSweep(hctx, cfg)
	cancel() // stop heartbeating before touching the journal again
	<-hbDone

	if lost.Load() {
		fmt.Fprintf(os.Stderr, "lbpsweep: shard %d/%d: lease lost (fenced by a successor); exiting without release\n", k, n)
		return service.ExitCanceled
	}
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", rerr)
		l.Release()
		return service.ExitConfigError
	}
	status := rep.Status()
	fmt.Fprintf(os.Stderr, "lbpsweep: shard %d/%d: %s: %s\n", k, n, status, rep.Summary())
	l.Release()
	return int(status)
}

// runCoordinator is `lbpsweep -shards N`: spawn one `-shard k/N` worker
// subprocess per shard (bounded by -shard-parallel), supervise their leases,
// and reassign dead shards after lease expiry. Worker output goes to
// per-attempt log files in -lease-dir; results land in the per-shard
// checkpoints, to be folded by -merge.
func runCoordinator(ctx context.Context, sf shardFlags, opts harness.Options, args []string, verbose bool) int {
	if sf.dir == "" {
		fmt.Fprintln(os.Stderr, "lbpsweep: -shards requires -lease-dir")
		return service.ExitConfigError
	}
	if _, err := expandIDs(args); err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return service.ExitConfigError
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return service.ExitFailure
	}

	workerArgs := func(k int) []string {
		a := []string{
			"-shard", fmt.Sprintf("%d/%d", k, sf.shards),
			"-lease-dir", sf.dir,
			"-lease-ttl", sf.ttl.String(),
			"-lease-heartbeat", sf.heartbeat.String(),
			"-insts", fmt.Sprint(opts.Insts),
			"-warmup", fmt.Sprint(opts.Warmup),
			"-workers", fmt.Sprint(opts.Workers),
			"-retries", fmt.Sprint(opts.Retries),
			"-timeout", opts.RunTimeout.String(),
		}
		if opts.Quick {
			a = append(a, "-quick")
		}
		if opts.AuditSample > 0 {
			a = append(a, "-audit-sample", fmt.Sprint(opts.AuditSample))
		}
		if verbose {
			a = append(a, "-v")
		}
		return append(a, args...)
	}

	cfg := shard.Config{
		Dir:         sf.dir,
		Shards:      sf.shards,
		Parallel:    sf.parallel,
		TTL:         sf.ttl,
		MaxAttempts: sf.attempts,
		Retry:       service.DefaultRetryPolicy(),
		Log:         os.Stderr,
		Spawn: func(_ context.Context, k, attempt int) (shard.Worker, error) {
			cmd := exec.Command(exe, workerArgs(k)...)
			logPath := filepath.Join(sf.dir, fmt.Sprintf("worker-%03d.attempt-%d.log", k, attempt))
			f, err := os.Create(logPath)
			if err != nil {
				return nil, err
			}
			cmd.Stdout, cmd.Stderr = f, f
			w, err := shard.StartCommand(cmd)
			if err != nil {
				f.Close()
				return nil, err
			}
			return &loggedWorker{Worker: w, log: f}, nil
		},
	}
	if sf.chaosKill >= 0 {
		cfg.Chaos, cfg.ChaosKill = true, sf.chaosKill
	}

	rep, err := shard.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return service.ExitConfigError
	}
	status := rep.Status()
	fmt.Fprintf(os.Stderr, "lbpsweep: coordinator: %s: %s (worker logs in %s)\n", status, rep.Summary(), sf.dir)
	if status == service.SweepOK {
		fmt.Fprintf(os.Stderr, "lbpsweep: merge with: lbpsweep -merge -shards %d -lease-dir %s\n", sf.shards, sf.dir)
	}
	return int(status)
}

// loggedWorker closes the worker's log file once it has terminated.
type loggedWorker struct {
	shard.Worker
	log *os.File
}

func (w *loggedWorker) Wait() error {
	err := w.Worker.Wait()
	w.log.Close()
	return err
}

// runMerge is `lbpsweep -merge`: fold the per-shard checkpoints in
// -lease-dir through the integrity gate and print the canonical, timing-free
// sweep output. With -checkpoint it instead renders a single-process sweep's
// checkpoint the same way — the two renders over the same ids are
// bit-identical, which is the differential the smoke test pins.
func runMerge(sf shardFlags, args []string) int {
	ids, err := expandIDs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return service.ExitConfigError
	}

	var merged *harness.Checkpoint
	switch {
	case sf.checkpoint != "":
		ck, err := harness.LoadCheckpoint(sf.checkpoint)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			return service.ExitFailure
		}
		if ck == nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: no checkpoint at %s\n", sf.checkpoint)
			return service.ExitConfigError
		}
		if ck.Note != "" {
			fmt.Fprintf(os.Stderr, "lbpsweep: %s\n", ck.Note)
		}
		merged = ck
	case sf.dir != "" && sf.shards >= 1:
		m, mrep, err := shard.Merge(sf.dir, sf.shards, ids)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			var merr *shard.MergeError
			if errors.As(err, &merr) {
				return service.ExitFailure // integrity gate tripped
			}
			return service.ExitConfigError
		}
		fmt.Fprintf(os.Stderr, "lbpsweep: %s\n", mrep.Summary())
		merged = m
	default:
		fmt.Fprintln(os.Stderr, "lbpsweep: -merge needs -lease-dir with -shards N (or -checkpoint file)")
		return service.ExitConfigError
	}

	if sf.mergeOut != "" {
		if err := merged.Save(sf.mergeOut); err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			return service.ExitFailure
		}
	}
	if err := shard.Render(os.Stdout, merged, ids); err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return service.ExitFailure
	}
	return service.ExitOK
}
