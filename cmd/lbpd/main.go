// Command lbpd is a minimal simulation daemon: it accepts branch-predictor
// simulation jobs over HTTP, executes them on a bounded worker pool with
// per-job timeouts and classified retry, and drains gracefully on
// SIGINT/SIGTERM.
//
// Usage:
//
//	lbpd [-addr :8090] [-workers N] [-queue N] [-job-timeout D] [-retries N] [-drain-grace D]
//
// API:
//
//	POST /jobs             {"workload": "...", "scheme": "...", "insts": N,
//	                        "seed": N?, "timeout_sec": S?} → 202 {"id": "job-0001"}
//	GET  /jobs             all jobs, submission order
//	GET  /jobs/{id}        one job's state (queued/running/done/failed/canceled)
//	GET  /jobs/{id}/result the finished job's Result (409 while pending)
//	GET  /healthz          {"ok": true, "draining": bool, "queued": N}
//
// Shutdown: on the first SIGINT/SIGTERM the HTTP listener stops accepting
// new connections and submissions are rejected with 503; queued and
// in-flight jobs get -drain-grace to finish, after which the remaining jobs
// are canceled (their state reports "canceled"). A second signal kills the
// process immediately. Exit code 0 after a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"localbp/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
	queue := flag.Int("queue", 64, "pending-job queue depth (submissions beyond it fail fast)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "wall-clock cap per job including retries (0 = none)")
	retries := flag.Int("retries", 2, "retry budget for transiently failed jobs")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for jobs before canceling them")
	flag.Parse()

	policy := service.DefaultRetryPolicy()
	policy.MaxAttempts = *retries + 1

	d := service.NewDaemon(service.DaemonConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		DrainGrace: *drainGrace,
		Retry:      policy,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: *addr, Handler: d.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.ListenAndServe() }()

	daemonDone := make(chan struct{})
	go func() { d.Run(ctx); close(daemonDone) }()

	fmt.Fprintf(os.Stderr, "lbpd: listening on %s (%d workers, queue %d)\n", *addr, *workers, *queue)

	select {
	case err := <-httpErr:
		// The listener died before any shutdown signal: configuration error.
		fmt.Fprintf(os.Stderr, "lbpd: %v\n", err)
		return 2
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "lbpd: shutting down: draining jobs (second signal kills immediately)")

	// Stop accepting connections, bounded by the drain grace plus slack for
	// in-flight responses; the worker pool drains in parallel.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "lbpd: http shutdown: %v\n", err)
	}
	<-daemonDone

	canceled := 0
	for _, j := range d.Jobs() {
		if j.State == service.JobCanceled {
			canceled++
		}
	}
	if canceled > 0 {
		fmt.Fprintf(os.Stderr, "lbpd: drained with %d job(s) canceled past the grace period\n", canceled)
		return 4
	}
	fmt.Fprintln(os.Stderr, "lbpd: drained cleanly")
	return 0
}
