// Command lbpd is a production-shaped simulation daemon: it accepts
// branch-predictor simulation jobs over HTTP, deduplicates them through a
// single-flight result cache, journals every submission and outcome for
// crash durability, executes them on a bounded worker pool with per-job
// timeouts and classified retry, sheds load under memory pressure, streams
// progress over SSE, and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	lbpd [-addr :8090] [-workers N] [-queue N] [-job-timeout D] [-retries N]
//	     [-drain-grace D] [-journal PATH] [-mem-highwater-mb N]
//	     [-client-inflight N] [-heartbeat D]
//
// API:
//
//	POST /jobs             {"workload": "...", "scheme": "...", "insts": N,
//	                        "seed": N?, "timeout_sec": S?}
//	                       → 202 {"id": "job-0001"}; 200 {"id", "cached": true}
//	                       when an identical finished job answers from cache;
//	                       202 {"id", "coalesced": true} when it coalesces
//	                       onto an identical in-flight job; 429 + Retry-After
//	                       when the queue, the client's in-flight cap or the
//	                       memory watermark rejects it
//	GET  /jobs             {"total": N, "jobs": [...]} (?state= filter,
//	                       ?limit= cap, default 100)
//	GET  /jobs/{id}        one job's state
//	                       (queued/running/done/failed/canceled/shed)
//	GET  /jobs/{id}/result the finished job's Result (409 while pending)
//	GET  /jobs/{id}/events SSE stream: state transitions, batched progress,
//	                       heartbeat comments
//	GET  /healthz          liveness: 200 while the process serves
//	GET  /readyz           readiness: 503 while draining or saturated
//	GET  /metrics          service counter snapshot
//
// With -journal, a restarted daemon replays the journal: finished jobs keep
// serving their results and unfinished jobs re-enter the queue.
//
// Shutdown: on the first SIGINT/SIGTERM the HTTP listener stops accepting
// new connections and submissions are rejected with 503; queued and
// in-flight jobs get -drain-grace to finish, after which the remaining jobs
// are canceled (their state reports "canceled"). A second signal kills the
// process immediately.
//
// Exit codes: 0 after a clean drain; 2 on a configuration or HTTP-server
// error (including one that surfaces during shutdown); 4 when jobs were
// canceled past the grace period.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"localbp/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executors")
	queue := flag.Int("queue", 64, "pending-job queue depth (submissions beyond it get 429)")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "wall-clock cap per job including retries (0 = none)")
	retries := flag.Int("retries", 2, "retry budget for transiently failed jobs")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for jobs before canceling them")
	journal := flag.String("journal", "", "durable job-journal path (empty = no durability)")
	memHighMB := flag.Int("mem-highwater-mb", 0, "heap high-watermark in MiB; above it submissions get 429 and queued jobs are shed (0 = off)")
	clientInflight := flag.Int("client-inflight", 0, "per-client cap on queued+running jobs (0 = unlimited)")
	heartbeat := flag.Duration("heartbeat", 15*time.Second, "SSE keep-alive period")
	flag.Parse()

	policy := service.DefaultRetryPolicy()
	policy.MaxAttempts = *retries + 1

	d, err := service.NewDaemon(service.DaemonConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *jobTimeout,
		DrainGrace:     *drainGrace,
		Retry:          policy,
		Journal:        *journal,
		MemHighWater:   uint64(*memHighMB) << 20,
		ClientInflight: *clientInflight,
		Heartbeat:      *heartbeat,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpd: %v\n", err)
		return service.ExitConfigError
	}
	if *journal != "" {
		records, truncated := d.ReplayStats()
		fmt.Fprintf(os.Stderr, "lbpd: journal %s: replayed %d record(s)", *journal, records)
		if truncated > 0 {
			fmt.Fprintf(os.Stderr, ", discarded %d torn byte(s)", truncated)
		}
		fmt.Fprintln(os.Stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: *addr, Handler: d.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- srv.ListenAndServe() }()

	daemonDone := make(chan struct{})
	go func() { d.Run(ctx); close(daemonDone) }()

	fmt.Fprintf(os.Stderr, "lbpd: listening on %s (%d workers, queue %d)\n", *addr, *workers, *queue)

	select {
	case err := <-httpErr:
		// The listener died before any shutdown signal: configuration error.
		fmt.Fprintf(os.Stderr, "lbpd: %v\n", err)
		return service.ExitConfigError
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "lbpd: shutting down: draining jobs (second signal kills immediately)")

	// Stop accepting connections, bounded by the drain grace plus slack for
	// in-flight responses; the worker pool drains in parallel.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainGrace+5*time.Second)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	<-daemonDone

	// Surface the listener's terminal error: Shutdown makes ListenAndServe
	// return ErrServerClosed on the happy path, so anything else (a listener
	// that died racing the signal, an accept loop failure) is a real fault
	// that must not exit 0.
	exit := service.ExitOK
	select {
	case err := <-httpErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "lbpd: http server: %v\n", err)
			exit = service.ExitConfigError
		}
	default:
	}
	if shutdownErr != nil && !errors.Is(shutdownErr, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "lbpd: http shutdown: %v\n", shutdownErr)
	}

	canceled := 0
	views, _ := d.Jobs(service.JobCanceled, 0)
	canceled = len(views)
	if exit != 0 {
		return exit
	}
	if canceled > 0 {
		fmt.Fprintf(os.Stderr, "lbpd: drained with %d job(s) canceled past the grace period\n", canceled)
		return service.ExitCanceled
	}
	fmt.Fprintln(os.Stderr, "lbpd: drained cleanly")
	return service.ExitOK
}
