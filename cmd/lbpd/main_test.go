package main

import (
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"localbp"
	"localbp/internal/daemonchaos"
)

// TestDaemonSmoke is the end-to-end "is the daemon production-shaped" check,
// wired into `make daemon-smoke`: build the real binary, submit a job,
// observe progress over SSE, SIGKILL the process mid-run, restart it on the
// same journal, and verify the job completes exactly once, answers from
// cache on resubmission, and the daemon drains cleanly with exit 0.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke test skipped in -short mode")
	}
	bin := daemonchaos.Build(t)
	journal := filepath.Join(t.TempDir(), "jobs.journal")
	h := daemonchaos.New(t, bin, journal)

	h.Start("-workers", "2", "-heartbeat", "250ms")
	h.WaitHealthy(10 * time.Second)
	if code := h.GetJSON("/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}

	w := localbp.Workloads()[0]
	req := map[string]any{"workload": w.Name, "scheme": "forward-coalesce", "insts": 3_000_000}
	code, body := h.Submit(req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %v", code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", body)
	}

	// Crash the daemon while the job is demonstrably mid-run (the stream
	// has delivered at least one progress event), then restart on the same
	// journal: the job must re-enter the queue and finish exactly once.
	h.WaitProgress(id, 15*time.Second)
	h.Kill()
	h.Start("-workers", "2", "-heartbeat", "250ms")
	h.WaitHealthy(10 * time.Second)

	total, jobs := h.List()
	if total != 1 || len(jobs) != 1 || jobs[0].ID != id {
		t.Fatalf("restart lost or duplicated jobs: total=%d jobs=%+v", total, jobs)
	}
	v := h.WaitTerminal(id, 60*time.Second)
	if v.State != "done" {
		t.Fatalf("job finished %q after restart: %s\nstderr:\n%s", v.State, v.Error, h.Stderr())
	}

	// An identical submission answers 200 from cache with the same id.
	code, body = h.Submit(req)
	if code != http.StatusOK || body["id"] != id || body["cached"] != true {
		t.Fatalf("resubmit not served from cache: status %d, body %v", code, body)
	}
	var metrics map[string]uint64
	if code := h.GetJSON("/metrics", &metrics); code != http.StatusOK || metrics["cache.hit"] == 0 {
		t.Fatalf("metrics: status %d, cache.hit=%d", code, metrics["cache.hit"])
	}

	if code := h.Stop(30 * time.Second); code != 0 {
		t.Fatalf("clean drain exited %d\nstderr:\n%s", code, h.Stderr())
	}
}
