// Command lbpbench measures end-to-end simulator throughput with
// testing.Benchmark and writes a machine-readable, timestamped baseline
// file. The baseline records ns/op, ns per simulated instruction, ns per
// simulated cycle, allocs/op and bytes/op for the obs-disabled core loop,
// the obs-enabled core loop and the LBP2 file-backed streaming replay
// (core-loop-stream), so later changes can be checked against a pinned
// performance trajectory (BENCH_baseline.json → BENCH_pr5.json →
// BENCH_pr10.json → …). It also records on-disk decode throughput
// (decode-lbp1, decode-lbp2, decode-lbp2-mmap): open + drain of the
// reference trace through the same chunked Source path -trace-file replay
// uses.
//
// Usage:
//
//	lbpbench [-out BENCH_pr10.json] [-insts N] [-workload NAME] [-scheme NAME]
//	lbpbench -compare -old BENCH_pr5.json -new BENCH_pr10.json [-max-regress 0.10]
//	lbpbench -smoke [-insts N]
//
// Compare mode gates the trajectory: it exits non-zero when any entry of
// -new regressed ns/op or allocs/op against -old by more than -max-regress
// (a toolchain mismatch between the files warns but does not fail). Smoke
// mode is the fast CI sanity pass: one in-memory run and one file-backed
// streamed run must succeed, agree exactly and stay within the allocation
// budget. -insts, -workload, -scheme and -seed spell the same across all
// commands.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"localbp"
	"localbp/internal/service"
	"localbp/internal/trace"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerInst   float64 `json:"ns_per_inst"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type baseline struct {
	GeneratedAt string  `json:"generated_at,omitempty"`
	GoVersion   string  `json:"go_version"`
	GOOS        string  `json:"goos"`
	GOARCH      string  `json:"goarch"`
	Workload    string  `json:"workload"`
	Scheme      string  `json:"scheme"`
	Insts       int     `json:"insts"`
	Cycles      int64   `json:"cycles"`
	Entries     []entry `json:"entries"`
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "write the baseline JSON to this file")
	insts := flag.Int("insts", 120_000, "instructions simulated per benchmark op")
	workload := flag.String("workload", "cloud-compression", "workload to benchmark")
	schemeName := flag.String("scheme", "forward-coalesce", "repair scheme to benchmark")
	seed := flag.Int64("seed", 0, "override the workload's trace-generation seed (0 = workload default)")
	compare := flag.Bool("compare", false, "compare two baseline files instead of benchmarking")
	oldPath := flag.String("old", "BENCH_baseline.json", "compare: reference baseline")
	newPath := flag.String("new", "BENCH_pr5.json", "compare: candidate baseline")
	maxRegress := flag.Float64("max-regress", 0.10, "compare: max tolerated fractional regression")
	smoke := flag.Bool("smoke", false, "quick sanity mode: single-run core-loop + core-loop-stream with an allocs/op guard, no baseline file")
	flag.Parse()

	if *compare {
		if err := compareBaselines(*oldPath, *newPath, *maxRegress); err != nil {
			fatal(err)
		}
		return
	}

	w, ok := localbp.Workload(*workload)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	if *seed != 0 {
		w.Seed = *seed
	}
	scheme, err := localbp.SchemeByName(*schemeName)
	if err != nil {
		fatal(err)
	}
	tr := w.Generate(*insts)

	if *smoke {
		if err := smokeRun(tr, scheme); err != nil {
			fatal(err)
		}
		return
	}

	// One reference run pins the cycle count the ns/cycle metric divides by
	// (the simulator is deterministic, so every op retires the same cycles).
	ref, err := localbp.SimulateTrace(tr, scheme)
	if err != nil {
		fatal(err)
	}

	bench := func(name string, opts ...localbp.Option) entry {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := localbp.SimulateTrace(tr, scheme, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.NsPerOp())
		e := entry{
			Name:        name,
			NsPerOp:     ns,
			NsPerInst:   ns / float64(len(tr)),
			NsPerCycle:  ns / float64(ref.Cycles),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("%-16s %12.0f ns/op  %6.1f ns/inst  %6.1f ns/cycle  %6d allocs/op  %9d B/op\n",
			name, e.NsPerOp, e.NsPerInst, e.NsPerCycle, e.AllocsPerOp, e.BytesPerOp)
		return e
	}

	entries := []entry{
		bench("core-loop"),
		bench("core-loop-obs",
			localbp.WithCPIStack(), localbp.WithCounters(), localbp.WithEventTrace(4096)),
	}
	stream, err := streamEntry(tr, scheme, ref.Cycles)
	if err != nil {
		fatal(err)
	}
	entries = append(entries, stream)
	decodes, err := decodeEntries(tr)
	if err != nil {
		fatal(err)
	}
	entries = append(entries, decodes...)

	b := baseline{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Workload:    w.Name,
		Scheme:      scheme.Label(),
		Insts:       len(tr),
		Cycles:      ref.Cycles,
		Entries:     entries,
	}

	// Atomic write: a crash mid-encode cannot corrupt a pinned baseline that
	// compare mode would later trust.
	if err := service.AtomicWriteFile(*out, func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(b)
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbpbench:", err)
	os.Exit(1)
}

// writeLBP2Temp writes the reference trace to a temporary LBP2 file and
// returns its path plus a cleanup func.
func writeLBP2Temp(tr []trace.Inst) (string, func(), error) {
	dir, err := os.MkdirTemp("", "lbpbench-stream")
	if err != nil {
		return "", nil, err
	}
	path := filepath.Join(dir, "t.lbp2")
	f, err := os.Create(path)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	if err := trace.WriteTraceLBP2(f, tr); err != nil {
		f.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	if err := f.Close(); err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	return path, func() { os.RemoveAll(dir) }, nil
}

// streamEntry measures the file-backed replay path end to end: each op opens
// the LBP2 file as a streaming Source and runs the full simulation through
// core.NewStream's fixed-memory sliding window — the exact pipeline
// -trace-file replay and the daemon's file-backed jobs use. Comparing it
// against core-loop prices the streaming layer itself, since both paths are
// bit-identical in results.
func streamEntry(tr []trace.Inst, scheme localbp.Scheme, cycles int64) (entry, error) {
	path, cleanup, err := writeLBP2Temp(tr)
	if err != nil {
		return entry{}, err
	}
	defer cleanup()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src, err := localbp.OpenTrace(path)
			if err != nil {
				b.Fatal(err)
			}
			res, err := localbp.FromSource(src, scheme)
			localbp.CloseTrace(src)
			if err != nil {
				b.Fatal(err)
			}
			if res.Insts != uint64(len(tr)) {
				b.Fatalf("streamed run retired %d insts, want %d", res.Insts, len(tr))
			}
		}
	})
	ns := float64(r.NsPerOp())
	e := entry{
		Name:        "core-loop-stream",
		NsPerOp:     ns,
		NsPerInst:   ns / float64(len(tr)),
		NsPerCycle:  ns / float64(cycles),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	fmt.Printf("%-16s %12.0f ns/op  %6.1f ns/inst  %6.1f ns/cycle  %6d allocs/op  %9d B/op\n",
		e.Name, e.NsPerOp, e.NsPerInst, e.NsPerCycle, e.AllocsPerOp, e.BytesPerOp)
	return e, nil
}

// smokeAllocBudget mirrors TestCoreLoopAllocGuard's per-run allocation
// budget: the core loop allocates at setup, not per cycle or per
// instruction, so a fixed count covers any instruction volume.
const smokeAllocBudget = 4096

// smokeRun is the fast CI sanity pass: one in-memory run and one file-backed
// streamed run of the same trace must succeed, agree on retired-instruction
// and cycle counts (the two paths are bit-identical by contract), and stay
// within the allocation budget. No baseline file is written — this gates
// "the benchmark paths still work", not performance.
func smokeRun(tr []trace.Inst, scheme localbp.Scheme) error {
	ref, err := localbp.SimulateTrace(tr, scheme)
	if err != nil {
		return fmt.Errorf("smoke core-loop: %w", err)
	}
	allocs := testing.AllocsPerRun(1, func() {
		if _, err := localbp.SimulateTrace(tr, scheme); err != nil {
			panic(err)
		}
	})
	if allocs > smokeAllocBudget {
		return fmt.Errorf("smoke core-loop: %.0f allocs/op, budget %d", allocs, smokeAllocBudget)
	}

	path, cleanup, err := writeLBP2Temp(tr)
	if err != nil {
		return fmt.Errorf("smoke core-loop-stream: %w", err)
	}
	defer cleanup()
	src, err := localbp.OpenTrace(path)
	if err != nil {
		return fmt.Errorf("smoke core-loop-stream: %w", err)
	}
	res, err := localbp.FromSource(src, scheme)
	localbp.CloseTrace(src)
	if err != nil {
		return fmt.Errorf("smoke core-loop-stream: %w", err)
	}
	if res.Insts != ref.Insts || res.Cycles != ref.Cycles {
		return fmt.Errorf("smoke: streamed run diverges from in-memory run: %d insts/%d cycles vs %d/%d",
			res.Insts, res.Cycles, ref.Insts, ref.Cycles)
	}
	fmt.Printf("smoke ok: %d insts, %d cycles, in-memory and streamed runs agree, %.0f allocs/op (budget %d)\n",
		ref.Insts, ref.Cycles, allocs, smokeAllocBudget)
	return nil
}

// decodeEntries measures on-disk trace decode throughput: the reference trace
// is written once per format to a temp directory, then each benchmark op
// opens the file and drains it through a fixed-size chunk buffer — the exact
// I/O pattern of -trace-file replay. The mmap entry is skipped silently on
// platforms without mmap support (it is a new, ungated comparison entry).
func decodeEntries(tr []trace.Inst) ([]entry, error) {
	dir, err := os.MkdirTemp("", "lbpbench-decode")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	write := func(name string, enc func(io.Writer, []trace.Inst) error) (string, error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return "", err
		}
		if err := enc(f, tr); err != nil {
			f.Close()
			return "", err
		}
		return path, f.Close()
	}
	lbp1, err := write("t.lbp", trace.WriteTrace)
	if err != nil {
		return nil, err
	}
	lbp2, err := write("t.lbp2", trace.WriteTraceLBP2)
	if err != nil {
		return nil, err
	}

	benchDecode := func(name, path string, mode trace.OpenMode) (entry, error) {
		// Probe once so an unsupported backend (mmap on exotic platforms)
		// skips the entry instead of failing the whole baseline run.
		probe, err := trace.OpenSourceMode(path, mode)
		if err != nil {
			return entry{}, err
		}
		trace.CloseSource(probe)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var chunk [4096]trace.Inst
			for i := 0; i < b.N; i++ {
				src, err := trace.OpenSourceMode(path, mode)
				if err != nil {
					b.Fatal(err)
				}
				total := 0
				for {
					n, err := src.Next(chunk[:])
					total += n
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				if total != len(tr) {
					b.Fatalf("decoded %d insts, want %d", total, len(tr))
				}
				trace.CloseSource(src)
			}
		})
		ns := float64(r.NsPerOp())
		e := entry{
			Name:        name,
			NsPerOp:     ns,
			NsPerInst:   ns / float64(len(tr)),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("%-16s %12.0f ns/op  %6.1f ns/inst  %18s  %6d allocs/op  %9d B/op\n",
			name, e.NsPerOp, e.NsPerInst, "", e.AllocsPerOp, e.BytesPerOp)
		return e, nil
	}

	var out []entry
	for _, d := range []struct {
		name, path string
		mode       trace.OpenMode
	}{
		{"decode-lbp1", lbp1, trace.OpenFile},
		{"decode-lbp2", lbp2, trace.OpenFile},
		{"decode-lbp2-mmap", lbp2, trace.OpenMmap},
	} {
		e, err := benchDecode(d.name, d.path, d.mode)
		if err != nil {
			if d.mode == trace.OpenMmap {
				fmt.Printf("%-16s skipped: %v\n", d.name, err)
				continue
			}
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// loadBaseline reads one baseline JSON file.
func loadBaseline(path string) (baseline, error) {
	var b baseline
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Entries) == 0 {
		return b, fmt.Errorf("%s: no benchmark entries", path)
	}
	return b, nil
}

// compareBaselines prints an old-vs-new table and errors when any matching
// entry regressed ns/op or allocs/op by more than maxRegress. Entries
// present on only one side are reported but not gated.
func compareBaselines(oldPath, newPath string, maxRegress float64) error {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		return err
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		return err
	}
	if oldB.Workload != newB.Workload || oldB.Insts != newB.Insts || oldB.Scheme != newB.Scheme {
		fmt.Printf("note: configurations differ (%s/%s/%d vs %s/%s/%d); ratios may not be meaningful\n",
			oldB.Workload, oldB.Scheme, oldB.Insts, newB.Workload, newB.Scheme, newB.Insts)
	}
	// A toolchain or platform mismatch skews ratios (different compiler,
	// different machine class) but is routine across a long-lived trajectory,
	// so it warns rather than fails.
	if (oldB.GoVersion != "" && newB.GoVersion != "" && oldB.GoVersion != newB.GoVersion) ||
		(oldB.GOOS != "" && newB.GOOS != "" && oldB.GOOS != newB.GOOS) ||
		(oldB.GOARCH != "" && newB.GOARCH != "" && oldB.GOARCH != newB.GOARCH) {
		fmt.Printf("WARNING: toolchain mismatch: old %s %s/%s vs new %s %s/%s — speedups partly reflect the toolchain, not just the code\n",
			oldB.GoVersion, oldB.GOOS, oldB.GOARCH, newB.GoVersion, newB.GOOS, newB.GOARCH)
	}
	oldByName := map[string]entry{}
	for _, e := range oldB.Entries {
		oldByName[e.Name] = e
	}
	fmt.Printf("%-16s %14s %14s %9s %14s %14s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs", "ratio")
	var regressions []string
	for _, ne := range newB.Entries {
		oe, ok := oldByName[ne.Name]
		if !ok {
			fmt.Printf("%-16s (new entry, not gated)\n", ne.Name)
			continue
		}
		delete(oldByName, ne.Name)
		speedup := oe.NsPerOp / ne.NsPerOp
		allocRatio := float64(oe.AllocsPerOp) / float64(max(ne.AllocsPerOp, 1))
		fmt.Printf("%-16s %14.0f %14.0f %8.2fx %14d %14d %8.2fx\n",
			ne.Name, oe.NsPerOp, ne.NsPerOp, speedup, oe.AllocsPerOp, ne.AllocsPerOp, allocRatio)
		if ne.NsPerOp > oe.NsPerOp*(1+maxRegress) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op regressed %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
				ne.Name, 100*(ne.NsPerOp/oe.NsPerOp-1), oe.NsPerOp, ne.NsPerOp, 100*maxRegress))
		}
		// Allocation counts are deterministic; gate with the same fractional
		// tolerance plus a small absolute slack for runtime-internal noise.
		if float64(ne.AllocsPerOp) > float64(oe.AllocsPerOp)*(1+maxRegress)+16 {
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op regressed %d -> %d (tolerance %.0f%%)",
				ne.Name, oe.AllocsPerOp, ne.AllocsPerOp, 100*maxRegress))
		}
	}
	for name := range oldByName {
		fmt.Printf("%-16s (dropped in %s)\n", name, newPath)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%%", len(regressions), 100*maxRegress)
	}
	fmt.Printf("ok: no entry regressed beyond %.0f%%\n", 100*maxRegress)
	return nil
}
