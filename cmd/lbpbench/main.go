// Command lbpbench measures end-to-end simulator throughput with
// testing.Benchmark and writes a machine-readable baseline file. The
// baseline records ns/op, ns per simulated instruction, ns per simulated
// cycle, allocs/op and bytes/op for the obs-disabled and obs-enabled core
// loop, so later changes can be checked against the ISSUE acceptance bar
// (obs-disabled within ±2% ns/op and 0 extra allocs/op).
//
// Usage:
//
//	lbpbench [-out BENCH_baseline.json] [-insts N] [-workload NAME] [-scheme NAME]
//
// -insts, -workload, -scheme and -seed spell the same across all commands.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"localbp"
)

type entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerInst   float64 `json:"ns_per_inst"`
	NsPerCycle  float64 `json:"ns_per_cycle"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type baseline struct {
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Workload  string  `json:"workload"`
	Scheme    string  `json:"scheme"`
	Insts     int     `json:"insts"`
	Cycles    int64   `json:"cycles"`
	Entries   []entry `json:"entries"`
}

func main() {
	out := flag.String("out", "BENCH_baseline.json", "write the baseline JSON to this file")
	insts := flag.Int("insts", 120_000, "instructions simulated per benchmark op")
	workload := flag.String("workload", "cloud-compression", "workload to benchmark")
	schemeName := flag.String("scheme", "forward-coalesce", "repair scheme to benchmark")
	seed := flag.Int64("seed", 0, "override the workload's trace-generation seed (0 = workload default)")
	flag.Parse()

	w, ok := localbp.Workload(*workload)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	if *seed != 0 {
		w.Seed = *seed
	}
	scheme, err := localbp.SchemeByName(*schemeName)
	if err != nil {
		fatal(err)
	}
	tr := w.Generate(*insts)

	// One reference run pins the cycle count the ns/cycle metric divides by
	// (the simulator is deterministic, so every op retires the same cycles).
	ref, err := localbp.SimulateTrace(tr, scheme)
	if err != nil {
		fatal(err)
	}

	bench := func(name string, opts ...localbp.Option) entry {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := localbp.SimulateTrace(tr, scheme, opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.NsPerOp())
		e := entry{
			Name:        name,
			NsPerOp:     ns,
			NsPerInst:   ns / float64(len(tr)),
			NsPerCycle:  ns / float64(ref.Cycles),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Printf("%-16s %12.0f ns/op  %6.1f ns/inst  %6.1f ns/cycle  %6d allocs/op  %9d B/op\n",
			name, e.NsPerOp, e.NsPerInst, e.NsPerCycle, e.AllocsPerOp, e.BytesPerOp)
		return e
	}

	b := baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Workload:  w.Name,
		Scheme:    scheme.Label(),
		Insts:     len(tr),
		Cycles:    ref.Cycles,
		Entries: []entry{
			bench("core-loop"),
			bench("core-loop-obs",
				localbp.WithCPIStack(), localbp.WithCounters(), localbp.WithEventTrace(4096)),
		},
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbpbench:", err)
	os.Exit(1)
}
