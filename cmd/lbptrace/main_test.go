package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"localbp/internal/daemonchaos"
)

// runCmd executes bin with args and returns combined output, failing the test
// on a non-zero exit.
func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// afterFirstLine strips a CLI report's header line (the only line that names
// the input file or workload) so replay outputs can be compared byte-exactly.
func afterFirstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// TestTraceSmoke is the end-to-end trace-pipeline check (< 30 s) behind
// `make trace-smoke`: build the real lbptrace and lbpsim binaries, generate
// an LBP2 trace, convert LBP2 -> LBP1 -> LBP2 (the round trip must be
// byte-identical), then replay both formats and the in-process generation
// through lbpsim — all three reports must agree bit-exactly.
func TestTraceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds real binaries")
	}
	lbptrace := daemonchaos.BuildBinary(t, "localbp/cmd/lbptrace")
	lbpsim := daemonchaos.BuildBinary(t, "localbp/cmd/lbpsim")
	dir := t.TempDir()
	lbp2 := filepath.Join(dir, "a.lbp2")
	lbp1 := filepath.Join(dir, "a.lbp")
	lbp2rt := filepath.Join(dir, "b.lbp2")

	const workload = "cloud-compression"
	const insts = "150000"
	runCmd(t, lbptrace, "-gen", "-workload", workload, "-insts", insts, "-out", lbp2)
	runCmd(t, lbptrace, "-convert", lbp2, "-out", lbp1, "-format", "lbp1")
	runCmd(t, lbptrace, "-convert", lbp1, "-out", lbp2rt, "-format", "lbp2")

	a, err := os.ReadFile(lbp2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(lbp2rt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("LBP2 -> LBP1 -> LBP2 round trip is not byte-identical (%d vs %d bytes)", len(a), len(b))
	}
	fi, err := os.Stat(lbp1)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(a))*2 > fi.Size() {
		t.Fatalf("LBP2 trace is %d bytes vs LBP1's %d; want at least 2x smaller", len(a), fi.Size())
	}

	// Replay both container formats and the in-process generation; everything
	// below the header line must agree byte-exactly.
	gen := afterFirstLine(runCmd(t, lbpsim, "-workload", workload, "-insts", insts, "-scheme", "forward-coalesce"))
	rep2 := afterFirstLine(runCmd(t, lbpsim, "-trace-file", lbp2, "-scheme", "forward-coalesce"))
	rep1 := afterFirstLine(runCmd(t, lbpsim, "-trace-file", lbp1, "-scheme", "forward-coalesce"))
	if rep2 != gen {
		t.Fatalf("LBP2 replay diverges from in-process generation:\n--- replay\n%s--- generation\n%s", rep2, gen)
	}
	if rep1 != rep2 {
		t.Fatalf("LBP1 and LBP2 replays diverge:\n--- lbp1\n%s--- lbp2\n%s", rep1, rep2)
	}

	// -stat must stream-summarize both formats identically (first line).
	st2 := runCmd(t, lbptrace, "-stat", lbp2)
	st1 := runCmd(t, lbptrace, "-stat", lbp1)
	if firstLine(st1) != firstLine(st2) {
		t.Fatalf("-stat summaries diverge:\n%s\n%s", st1, st2)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
