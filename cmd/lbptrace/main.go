// Command lbptrace generates, saves, inspects and characterizes the
// synthetic workload traces of the evaluation suite.
//
// Usage:
//
//	lbptrace -list                          # list the 202-workload suite
//	lbptrace -workload NAME [-insts N]      # summarize a workload
//	lbptrace -workload NAME -sites          # print its branch-site inventory
//	lbptrace -workload NAME -o trace.lbp    # save the binary trace
//	lbptrace -i trace.lbp                   # summarize a saved trace
package main

import (
	"flag"
	"fmt"
	"os"

	"localbp/internal/trace"
	"localbp/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list all suite workloads")
	name := flag.String("workload", "", "workload to generate")
	insts := flag.Int("insts", 300_000, "instructions to generate")
	sites := flag.Bool("sites", false, "print the branch-site inventory")
	out := flag.String("o", "", "write the binary trace to this file")
	in := flag.String("i", "", "read and summarize a binary trace file")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-26s %-9s loops conds\n", "name", "category")
		for _, w := range workloads.Suite() {
			fmt.Printf("%-26s %-9s %5d %5d\n", w.Name, w.Category, w.Profile.LoopSites, w.Profile.CondSites)
		}

	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadTrace(f)
		if err != nil {
			fatal(err)
		}
		fmt.Println(trace.Summarize(tr))

	case *name != "":
		w, ok := workloads.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *name))
		}
		if *sites {
			_, inventory := workloads.BuildProgramInfo(w.Profile, w.Seed)
			fmt.Printf("%d branch sites:\n", len(inventory))
			for _, si := range inventory {
				fmt.Printf("  %#08x %-14s %s\n", si.PC, si.Kind, si.Detail)
			}
			return
		}
		tr := w.Generate(*insts)
		fmt.Printf("%s (%s): %s\n", w.Name, w.Category, trace.Summarize(tr))
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := trace.WriteTrace(f, tr); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *out)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbptrace:", err)
	os.Exit(1)
}
