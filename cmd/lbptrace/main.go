// Command lbptrace generates, saves, inspects and characterizes the
// synthetic workload traces of the evaluation suite.
//
// Usage:
//
//	lbptrace -list                          # list the 202-workload suite
//	lbptrace -workload NAME [-insts N]      # summarize a workload
//	lbptrace -workload NAME -sites          # print its branch-site inventory
//	lbptrace -workload NAME -out trace.lbp  # save the binary trace
//	lbptrace -in trace.lbp                  # summarize a saved trace
//
// -insts, -workload, -scheme and -seed spell the same across lbpsim,
// lbpsweep and lbptrace; the old -o/-i spellings still work with a
// deprecation note.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"localbp/internal/cliflags"
	"localbp/internal/service"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list all suite workloads")
	name := flag.String("workload", "", "workload to generate")
	insts := flag.Int("insts", 300_000, "instructions to generate")
	seed := flag.Int64("seed", 0, "override the workload's trace-generation seed (0 = workload default)")
	sites := flag.Bool("sites", false, "print the branch-site inventory")
	out := flag.String("out", "", "write the binary trace to this file")
	in := flag.String("in", "", "read and summarize a binary trace file")
	cliflags.Alias(flag.CommandLine, "out", "o")
	cliflags.Alias(flag.CommandLine, "in", "i")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-26s %-9s loops conds\n", "name", "category")
		for _, w := range workloads.Suite() {
			fmt.Printf("%-26s %-9s %5d %5d\n", w.Name, w.Category, w.Profile.LoopSites, w.Profile.CondSites)
		}

	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.ReadTrace(f)
		if err != nil {
			fatal(err)
		}
		fmt.Println(trace.Summarize(tr))

	case *name != "":
		w, ok := workloads.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *name))
		}
		if *seed != 0 {
			w.Seed = *seed
		}
		if *sites {
			_, inventory := workloads.BuildProgramInfo(w.Profile, w.Seed)
			fmt.Printf("%d branch sites:\n", len(inventory))
			for _, si := range inventory {
				fmt.Printf("  %#08x %-14s %s\n", si.PC, si.Kind, si.Detail)
			}
			return
		}
		tr := w.Generate(*insts)
		fmt.Printf("%s (%s): %s\n", w.Name, w.Category, trace.Summarize(tr))
		if *out != "" {
			// Atomic write: an interrupted save never leaves a torn trace
			// file for a later run to consume.
			if err := service.AtomicWriteFile(*out, func(f io.Writer) error {
				return trace.WriteTrace(f, tr)
			}); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *out)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbptrace:", err)
	os.Exit(1)
}
