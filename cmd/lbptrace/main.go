// Command lbptrace generates, saves, converts, inspects and characterizes
// workload traces — both the synthetic evaluation suite and external trace
// files (LBP1, LBP2, ChampSim).
//
// Usage:
//
//	lbptrace -list                            # list suite + stressor workloads
//	lbptrace -list-schemes                    # list the scheme registry
//	lbptrace -workload NAME [-insts N]        # summarize a workload
//	lbptrace -workload NAME -sites            # print its branch-site inventory
//	lbptrace -gen -workload NAME -out F       # save the trace (-format lbp1|lbp2)
//	lbptrace -stat trace.lbp2                 # summarize a saved trace file
//	lbptrace -convert in.lbp -out F           # re-encode a trace file
//
// -insts, -workload, -scheme and -seed spell the same across lbpsim,
// lbpsweep, lbpbench and lbptrace; the old -o/-i spellings still work with
// a deprecation note, and `-workload NAME -out F` still saves without -gen.
//
// -stat and -convert stream: the input is decoded chunk-at-a-time, so
// arbitrarily long traces are handled at fixed memory (LBP2 output; LBP1
// output buffers because its header carries the record count). For LBP2
// inputs -stat also prints the container layout (chunks, index, bytes per
// instruction).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"localbp/internal/cliflags"
	"localbp/internal/schemes"
	"localbp/internal/service"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

func main() {
	list := flag.Bool("list", false, "list all suite and stressor workloads")
	listSchemes := flag.Bool("list-schemes", false, "list the shared scheme registry and exit")
	name := flag.String("workload", "", "workload to generate")
	insts := flag.Int("insts", 300_000, "instructions to generate")
	seed := flag.Int64("seed", 0, "override the workload's trace-generation seed (0 = workload default)")
	sites := flag.Bool("sites", false, "print the branch-site inventory")
	gen := flag.Bool("gen", false, "generate -workload and write it to -out")
	format := flag.String("format", "lbp2", "output trace format: lbp1 or lbp2")
	out := flag.String("out", "", "write the binary trace to this file")
	stat := flag.String("stat", "", "summarize a saved trace file (lbp1, lbp2 or champsim)")
	convert := flag.String("convert", "", "re-encode this trace file to -out in -format")
	cliflags.Alias(flag.CommandLine, "out", "o")
	cliflags.Alias(flag.CommandLine, "stat", "in")
	cliflags.Alias(flag.CommandLine, "stat", "i")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-26s %-9s loops conds\n", "name", "category")
		for _, w := range workloads.Suite() {
			fmt.Printf("%-26s %-9s %5d %5d\n", w.Name, w.Category, w.Profile.LoopSites, w.Profile.CondSites)
		}
		fmt.Printf("\nstressors (predictor torture ladders, not in Table-1 aggregates):\n")
		for _, w := range workloads.StressSuite() {
			fmt.Printf("%-26s %-9s param %d\n", w.Name, w.Category, w.Stress.Param)
		}

	case *listSchemes:
		fmt.Print(schemes.Usage())

	case *stat != "":
		if err := statFile(*stat); err != nil {
			fatal(err)
		}

	case *convert != "":
		if *out == "" {
			fatal(fmt.Errorf("-convert requires -out"))
		}
		if err := convertFile(*convert, *out, *format); err != nil {
			fatal(err)
		}

	case *name != "":
		w, ok := workloads.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (see -list)", *name))
		}
		if *seed != 0 {
			w.Seed = *seed
		}
		if *sites {
			_, inventory := workloads.BuildProgramInfo(w.Profile, w.Seed)
			fmt.Printf("%d branch sites:\n", len(inventory))
			for _, si := range inventory {
				fmt.Printf("  %#08x %-14s %s\n", si.PC, si.Kind, si.Detail)
			}
			return
		}
		if *gen && *out == "" {
			fatal(fmt.Errorf("-gen requires -out"))
		}
		tr := w.Generate(*insts)
		fmt.Printf("%s (%s): %s\n", w.Name, w.Category, trace.Summarize(tr))
		if *out != "" {
			if err := writeFile(*out, *format, tr); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%s)\n", *out, *format)
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// statFile prints the aggregate statistics of any supported trace file,
// decoding it chunk-at-a-time; LBP2 containers also get a layout line.
func statFile(path string) error {
	src, err := trace.OpenSource(path)
	if err != nil {
		return err
	}
	defer trace.CloseSource(src)
	st, err := trace.SummarizeSource(src)
	if err != nil {
		return err
	}
	fmt.Println(st)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if st2, err := trace.StatLBP2(f, fi.Size()); err == nil {
		fmt.Println(st2)
	} else {
		fmt.Printf("container: %s, %d bytes (%.2f B/inst)\n",
			formatName(path), fi.Size(), float64(fi.Size())/float64(max(1, st.Insts)))
	}
	return nil
}

// formatName sniffs the container format of path for display.
func formatName(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return "unreadable"
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return "unknown"
	}
	switch {
	case string(magic[:]) == "1PBL":
		return "lbp1"
	case string(magic[:]) == "2PBL":
		return "lbp2"
	default:
		return "champsim/raw"
	}
}

// convertFile re-encodes the trace at in to the requested format at out.
// LBP2 output streams through the chunked writer at fixed memory; LBP1
// output buffers the decoded trace because the LBP1 header carries the
// record count up-front.
func convertFile(in, out, format string) error {
	src, err := trace.OpenSource(in)
	if err != nil {
		return err
	}
	defer trace.CloseSource(src)

	switch format {
	case "lbp2":
		var total int
		err = service.AtomicWriteFile(out, func(f io.Writer) error {
			lw, err := trace.NewLBP2Writer(f, 0)
			if err != nil {
				return err
			}
			var chunk [4096]trace.Inst
			for {
				n, err := src.Next(chunk[:])
				if n > 0 {
					if werr := lw.Append(chunk[:n]); werr != nil {
						return werr
					}
					total += n
				}
				if err == io.EOF {
					return lw.Close()
				}
				if err != nil {
					return err
				}
			}
		})
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s (lbp2, %d insts)\n", out, total)
	case "lbp1":
		tr, err := trace.ReadAll(src)
		if err != nil {
			return err
		}
		if err := service.AtomicWriteFile(out, func(f io.Writer) error {
			return trace.WriteTrace(f, tr)
		}); err != nil {
			return err
		}
		fmt.Printf("wrote %s (lbp1, %d insts)\n", out, len(tr))
	default:
		return fmt.Errorf("unknown -format %q (lbp1 or lbp2)", format)
	}
	return nil
}

// writeFile saves a generated trace in the requested format; the atomic
// write means an interrupted save never leaves a torn file behind.
func writeFile(path, format string, tr []trace.Inst) error {
	switch format {
	case "lbp1":
		return service.AtomicWriteFile(path, func(f io.Writer) error {
			return trace.WriteTrace(f, tr)
		})
	case "lbp2":
		return service.AtomicWriteFile(path, func(f io.Writer) error {
			return trace.WriteTraceLBP2(f, tr)
		})
	default:
		return fmt.Errorf("unknown -format %q (lbp1 or lbp2)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lbptrace:", err)
	os.Exit(1)
}
