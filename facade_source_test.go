package localbp

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"localbp/internal/trace"
)

// writeLBP2File persists tr at dir/name in the LBP2 format and returns the
// path.
func writeLBP2File(t *testing.T, dir, name string, tr []trace.Inst) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceLBP2(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestFromSourceMatchesSimulate pins the redesigned entry points against each
// other: generation, an in-memory source, the deprecated slice shim, and a
// file replay must all produce identical results.
func TestFromSourceMatchesSimulate(t *testing.T) {
	w := QuickWorkloads()[0]
	const insts = 40_000
	want, err := Simulate(w, insts, ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}

	tr := w.Generate(insts)
	fromSrc, err := FromSource(trace.NewSliceSource(tr), ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, fromSrc) {
		t.Fatalf("FromSource diverges from Simulate\n  src: %+v\n  sim: %+v", fromSrc, want)
	}

	shim, err := SimulateTrace(tr, ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, shim) {
		t.Fatalf("SimulateTrace shim diverges\n  shim: %+v\n  sim:  %+v", shim, want)
	}

	path := writeLBP2File(t, t.TempDir(), "w.lbp2", tr)
	replay, err := Simulate(w, 0, ForwardWalk(), WithTraceFile(path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, replay) {
		t.Fatalf("file replay diverges\n  file: %+v\n  sim:  %+v", replay, want)
	}

	src, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseTrace(src)
	streamed, err := FromSource(src, ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, streamed) {
		t.Fatalf("OpenTrace replay diverges\n  file: %+v\n  sim:  %+v", streamed, want)
	}
}

// TestMustSimulateTraceShim keeps the deprecated panic-on-error entry point
// working.
func TestMustSimulateTraceShim(t *testing.T) {
	w := QuickWorkloads()[1]
	tr := w.Generate(8000)
	res := MustSimulateTrace(tr, BaselineTAGE())
	if res.Insts == 0 || res.Scheme != "tage" {
		t.Fatalf("shim result: %+v", res)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSimulateTrace should panic on error")
		}
	}()
	MustSimulateTrace(tr, nil)
}

// TestFromSourceOptionValidation pins the error paths of the new surface.
func TestFromSourceOptionValidation(t *testing.T) {
	if _, err := FromSource(nil, BaselineTAGE()); err == nil {
		t.Fatal("nil source accepted")
	}
	w := QuickWorkloads()[0]
	tr := w.Generate(2000)
	path := writeLBP2File(t, t.TempDir(), "w.lbp2", tr)
	if _, err := Simulate(w, 0, BaselineTAGE(), WithTraceFile(path), WithSeed(7)); err == nil {
		t.Fatal("WithSeed on a file replay accepted")
	}
	src, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseTrace(src)
	if _, err := FromSource(src, BaselineTAGE(), WithGolden()); err == nil {
		t.Fatal("WithGolden on a streaming source accepted")
	}
	// WithGolden on an in-memory source still works.
	if _, err := FromSource(trace.NewSliceSource(tr), BaselineTAGE(), WithGolden()); err != nil {
		t.Fatal(err)
	}
}

// TestTraceFileReplayFixedMemory is the acceptance criterion: a >= 5M-
// instruction LBP2 trace replays at fixed memory — the replay's allocations
// are a small constant independent of trace length (the trace alone is
// ~190 MiB decoded) — and bit-identically to in-process generation.
func TestTraceFileReplayFixedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("5M-instruction replay is not a -short test")
	}
	w := QuickWorkloads()[0]
	const insts = 5_000_000
	tr := w.Generate(insts)
	dir := t.TempDir()
	path := writeLBP2File(t, dir, "big.lbp2", tr)
	smallPath := writeLBP2File(t, dir, "small.lbp2", tr[:insts/5])
	tr = nil

	replayAllocs := func(p string) (Result, uint64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		res, err := Simulate(w, 0, BaselineTAGE(), WithTraceFile(p))
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return res, after.TotalAlloc - before.TotalAlloc
	}

	resSmall, allocSmall := replayAllocs(smallPath)
	resBig, allocBig := replayAllocs(path)
	if resSmall.Insts != insts/5 || resBig.Insts != insts {
		t.Fatalf("replayed %d and %d insts", resSmall.Insts, resBig.Insts)
	}
	t.Logf("replay allocations: 1M insts -> %.1f MiB, 5M insts -> %.1f MiB",
		float64(allocSmall)/(1<<20), float64(allocBig)/(1<<20))

	// Fixed memory: 5x the instructions must NOT cost 5x the allocations —
	// the window and decode buffers are constant, so the totals should be
	// nearly equal. Allow 1.5x slack for runtime noise, plus an absolute
	// ceiling far below the 190 MiB resident trace.
	if allocBig > allocSmall*3/2 {
		t.Fatalf("allocations scale with trace length: 1M -> %d B, 5M -> %d B", allocSmall, allocBig)
	}
	if allocBig > 64<<20 {
		t.Fatalf("5M-instruction replay allocated %d B; want far below the decoded trace size", allocBig)
	}

	// Bit-identity with in-process generation of the same workload/seed.
	want, err := Simulate(w, insts, BaselineTAGE())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, resBig) {
		t.Fatalf("5M file replay diverges from in-process generation\n  file: %+v\n  gen:  %+v", resBig, want)
	}
}
