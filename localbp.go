// Package localbp reproduces "Towards the adoption of Local Branch
// Predictors in Modern Out-of-Order Superscalar Processors" (Soundararajan
// et al., MICRO-52, 2019): a cycle-level out-of-order core with a TAGE
// baseline predictor, the CBPw-Loop two-level local predictor, and every
// BHT repair scheme the paper studies — perfect, none, update-at-retire,
// snapshot queue, backward/forward walk history files, multi-stage split
// BHT, and limited-PC repair.
//
// This package is the public facade. Schemes are values built by named
// constructors (optionally tuned with Scheme options), and a simulation is
// one Simulate call, tuned with functional options:
//
//	w, _ := localbp.Workload("cloud-compression")
//	res, err := localbp.Simulate(w, 500_000, localbp.ForwardWalk(),
//		localbp.WithAudit(), localbp.WithCPIStack())
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f, MPKI %.2f\n%s", res.IPC, res.MPKI, res.CPI)
//
// Observability (the CPI stack, the counter registry, the event tracer) is
// opt-in per run: a Simulate call without WithCPIStack/WithCounters/
// WithEventTrace/WithObserver runs the bare pipeline.
//
// The full component API lives in the internal packages and is exercised by
// the cmd/ tools, the examples/ programs and the experiment harness; see
// DESIGN.md for the architecture and EXPERIMENTS.md for the paper-vs-
// measured results.
package localbp

import (
	"context"
	"errors"
	"fmt"

	"localbp/internal/audit"
	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/core"
	"localbp/internal/obs"
	"localbp/internal/repair"
	"localbp/internal/schemes"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// Scheme names a local-predictor integration (predictor + repair),
// resolved through the shared scheme registry. Values are built by the
// named constructors (BaselineTAGE, ForwardWalk, ...) or SchemeByName.
type Scheme interface {
	// Label returns the scheme's display name.
	Label() string
	// spec keeps the interface closed over this package's registry entries.
	spec() schemeSpec
}

type schemeSpec struct {
	label string
	name  string // registry name
	opts  []SchemeOpt
}

func (s schemeSpec) Label() string    { return s.label }
func (s schemeSpec) spec() schemeSpec { return s }

func mkScheme(label, name string, opts []SchemeOpt) Scheme {
	return schemeSpec{label: label, name: name, opts: opts}
}

// SchemeOpt tunes a scheme's construction parameters (loop size, OBQ
// capacity, port budget, ...). Apply via the scheme constructors.
type SchemeOpt = schemes.Opt

// WithLoopEntries selects the CBPw-Loop predictor size: 64, 128 (default)
// or 256 entries. Other values fall back to 128.
func WithLoopEntries(n int) SchemeOpt {
	return func(p *schemes.Params) {
		switch n {
		case 64:
			p.Loop = loop.Loop64()
		case 256:
			p.Loop = loop.Loop256()
		default:
			p.Loop = loop.Loop128()
		}
	}
}

// WithOBQEntries sets the outstanding-branch-queue capacity.
func WithOBQEntries(n int) SchemeOpt {
	return func(p *schemes.Params) { p.OBQEntries = n }
}

// WithPorts sets the checkpoint-read and BHT-write port budget.
func WithPorts(ckptRead, bhtWrite int) SchemeOpt {
	return func(p *schemes.Params) {
		p.Ports = repair.Ports{CkptRead: ckptRead, BHTWrite: bhtWrite}
	}
}

// WithCoalescing toggles OBQ same-PC run coalescing (forward walk).
func WithCoalescing(on bool) SchemeOpt {
	return func(p *schemes.Params) { p.Coalesce = on }
}

// WithSharedPT toggles the shared pattern table (multi-stage).
func WithSharedPT(on bool) SchemeOpt {
	return func(p *schemes.Params) { p.SharedPT = on }
}

// WithWritePorts sets the BHT write-port count (limited-PC repair).
func WithWritePorts(n int) SchemeOpt {
	return func(p *schemes.Params) { p.WritePorts = n }
}

// WithInvalidate makes limited-PC repair invalidate entries instead of
// restoring them.
func WithInvalidate(on bool) SchemeOpt {
	return func(p *schemes.Params) { p.Invalidate = on }
}

// BaselineTAGE simulates the TAGE-only baseline (no local predictor).
func BaselineTAGE() Scheme { return mkScheme("tage", "baseline", nil) }

// PerfectRepair is the oracle upper bound: unbounded checkpoints, zero-cycle
// repair.
func PerfectRepair(opts ...SchemeOpt) Scheme { return mkScheme("perfect", "perfect", opts) }

// NoRepair leaves the speculative BHT state unrepaired (paper §2.7).
func NoRepair(opts ...SchemeOpt) Scheme { return mkScheme("no-repair", "none", opts) }

// RetireUpdate defers BHT updates to retirement (paper §6.2).
func RetireUpdate(opts ...SchemeOpt) Scheme { return mkScheme("retire-update", "retire", opts) }

// SnapshotQueue checkpoints the full BHT per branch (SNAP-32-8-8).
func SnapshotQueue(opts ...SchemeOpt) Scheme { return mkScheme("snapshot", "snapshot", opts) }

// BackwardWalk is the prior-art history-file repair (BWD-32-4-4).
func BackwardWalk(opts ...SchemeOpt) Scheme { return mkScheme("backward-walk", "backward", opts) }

// ForwardWalk is the paper's headline realistic repair (FWD-32-4-2 with OBQ
// coalescing, §3.1).
func ForwardWalk(opts ...SchemeOpt) Scheme {
	return mkScheme("forward-walk", "forward-coalesce", opts)
}

// MultiStage is the split-BHT two-stage design with a shared PT (§3.2).
func MultiStage(opts ...SchemeOpt) Scheme { return mkScheme("multistage", "multistage", opts) }

// GenericLocal swaps CBPw-Loop for a generic two-level (Yeh-Patt) local
// predictor under forward-walk repair, demonstrating the paper's claim that
// the repair techniques extend to any local predictor design.
func GenericLocal(opts ...SchemeOpt) Scheme {
	return mkScheme("yehpatt-forward", "yehpatt-forward", opts)
}

// LimitedPC repairs m PCs per misprediction (§3.3).
func LimitedPC(m int, opts ...SchemeOpt) Scheme {
	all := append([]SchemeOpt{func(p *schemes.Params) { p.PCs = m }}, opts...)
	return mkScheme(fmt.Sprintf("limited-%dpc", m), "limited", all)
}

// SchemeByName resolves any registry scheme name or alias (see SchemeNames);
// the label is the canonical registry name.
func SchemeByName(name string, opts ...SchemeOpt) (Scheme, error) {
	d, _, err := schemes.Resolve(name, opts...)
	if err != nil {
		return nil, fmt.Errorf("localbp: %w", err)
	}
	return mkScheme(d.Name, d.Name, opts), nil
}

// SchemeNames returns every canonical scheme name, sorted.
func SchemeNames() []string { return schemes.Names() }

// SchemeOption is the deprecated name of Scheme.
//
// Deprecated: use Scheme.
type SchemeOption = Scheme

// Observability re-exports: callers interpret CPI stacks and trace events
// through these aliases without importing internal packages.
type (
	// CPIStack is a per-run cycle-accounting breakdown; every simulated
	// cycle is attributed to exactly one bucket. Its String method renders
	// an aligned table.
	CPIStack = obs.CPIStack
	// CPIBucket indexes one CPIStack category.
	CPIBucket = obs.CPIBucket
	// Event is one structured trace event (mispredict, repair, ...).
	Event = obs.Event
	// EventKind discriminates Event values.
	EventKind = obs.EventKind
)

// CPI-stack buckets (see CPIStack.Fraction).
const (
	CPIRetired         = obs.CPIRetired
	CPIFrontendResteer = obs.CPIFrontendResteer
	CPIMemoryBound     = obs.CPIMemoryBound
	CPIRepairBusy      = obs.CPIRepairBusy
	CPIROBFull         = obs.CPIROBFull
	CPILSQFull         = obs.CPILSQFull
	CPIAllocStall      = obs.CPIAllocStall
	// NumCPIBuckets is the bucket count; valid buckets are < NumCPIBuckets.
	NumCPIBuckets = obs.NumCPIBuckets
)

// Event kinds emitted by the tracer.
const (
	EvMispredict   = obs.EvMispredict
	EvEarlyResteer = obs.EvEarlyResteer
	EvRepair       = obs.EvRepair
	EvOBQCoalesce  = obs.EvOBQCoalesce
	EvPrefetchHit  = obs.EvPrefetchHit
)

// Source is the canonical streaming trace contract (see trace.Source):
// FromSource consumes one, OpenTrace builds one from an on-disk LBP1/LBP2/
// ChampSim file, and trace.NewSliceSource wraps an in-memory stream.
type Source = trace.Source

// OpenTrace opens an on-disk trace (LBP1, LBP2 or .champsim/.cst external
// format, sniffed automatically; LBP2 is memory-mapped when the platform
// supports it) as a streaming Source. Release it with CloseTrace.
func OpenTrace(path string) (Source, error) { return trace.OpenSource(path) }

// CloseTrace releases a source's open file or mapping; sources without
// resources are a no-op.
func CloseTrace(src Source) error { return trace.CloseSource(src) }

// Option tunes one Simulate/FromSource run.
type Option func(*simConfig)

type simConfig struct {
	ctx       context.Context
	auditOn   bool
	golden    bool
	seed      int64
	seedSet   bool
	warmup    uint64
	cpistack  bool
	counters  bool
	traceCap  int
	observer  func(Event)
	progress  func(uint64)
	maxCycles int64
	traceFile string
	noMemo    bool
}

// WithContext runs the simulation under ctx: cancellation or a deadline
// aborts the run within one cancellation-check stride with a structured
// error (errors.Is matches context.Canceled / context.DeadlineExceeded and
// the core.ErrCanceled sentinel). The wall-clock deadline composes with the
// cycle-domain watchdog (WithMaxCycles): whichever bound trips first wins.
// The context checks are read-only — a run that completes is bit-identical
// to one without a context.
func WithContext(ctx context.Context) Option {
	return func(c *simConfig) { c.ctx = ctx }
}

// WithAudit enables the integrity auditor: read-only invariant checks over
// the core loop and the repair scheme; the first violation aborts the run
// with a structured *audit.IntegrityError.
func WithAudit() Option { return func(c *simConfig) { c.auditOn = true } }

// WithGolden cross-checks every retirement against the timing-free in-order
// golden model of the same trace.
func WithGolden() Option { return func(c *simConfig) { c.golden = true } }

// WithSeed overrides the workload's trace-generation seed (Simulate only;
// SimulateTrace takes a prepared stream).
func WithSeed(s int64) Option {
	return func(c *simConfig) { c.seed, c.seedSet = s, true }
}

// WithWarmup excludes the first n retired instructions from the reported
// statistics (predictor and cache warmup).
func WithWarmup(n uint64) Option { return func(c *simConfig) { c.warmup = n } }

// WithMaxCycles bounds the run's simulated cycles (0 = automatic budget).
func WithMaxCycles(n int64) Option { return func(c *simConfig) { c.maxCycles = n } }

// WithCPIStack enables per-cycle CPI-stack accounting; Result.CPI holds the
// breakdown. The attribution is audited: buckets must sum to total cycles.
func WithCPIStack() Option { return func(c *simConfig) { c.cpistack = true } }

// WithCounters enables the counter registry; Result.Counters holds a
// name → value snapshot across core, memory, OBQ and repair subsystems.
func WithCounters() Option { return func(c *simConfig) { c.counters = true } }

// WithEventTrace enables the structured event tracer with a ring buffer of
// the given capacity (≤ 0 selects 4096); Result.Events holds the retained
// events, oldest first.
func WithEventTrace(capacity int) Option {
	return func(c *simConfig) {
		if capacity <= 0 {
			capacity = 4096
		}
		c.traceCap = capacity
	}
}

// WithObserver streams every trace event to fn as it is emitted (implies
// event tracing). fn runs on the simulation goroutine; keep it cheap.
func WithObserver(fn func(Event)) Option {
	return func(c *simConfig) { c.observer = fn }
}

// WithProgress reports the cumulative retired-instruction count to fn
// periodically (at the cycle loop's cancellation-poll stride) and once at
// completion. The hook is read-only — results are bit-identical with or
// without it — and fn runs on the simulation goroutine, so it must be cheap;
// long-running services batch downstream work (see internal/obs.Accumulator).
func WithProgress(fn func(retired uint64)) Option {
	return func(c *simConfig) { c.progress = fn }
}

// WithoutBlockMemo disables the hot basic-block timeline memo (DESIGN.md
// §17). The memo is exact — a memoized run is bit-identical to a live one —
// so this knob exists for differential testing and for measuring the memo's
// own overhead, not for changing results.
func WithoutBlockMemo() Option { return func(c *simConfig) { c.noMemo = true } }

// WithTraceFile replays an on-disk trace (LBP1/LBP2/ChampSim) instead of
// generating the workload's stream: Simulate streams the file at fixed
// memory, capped at n instructions when n > 0 (n <= 0 replays the whole
// file). The workload's name is kept for labeling; its seed and profile are
// unused. WithSeed and WithGolden do not compose with a streamed file (the
// golden oracle needs the whole trace resident).
func WithTraceFile(path string) Option {
	return func(c *simConfig) { c.traceFile = path }
}

// Result summarizes one simulation.
type Result struct {
	Scheme      string
	IPC         float64
	MPKI        float64
	Cycles      int64
	Insts       uint64
	Branches    uint64
	Mispredicts uint64
	// Overrides counts local-predictor overrides of TAGE; OverridesOK the
	// ones confirmed correct on the retired path.
	Overrides, OverridesOK uint64

	// CPI is the cycle-accounting breakdown; non-nil only with WithCPIStack.
	CPI *CPIStack
	// Counters is the registry snapshot; non-nil only with WithCounters.
	Counters map[string]uint64
	// Events holds the tracer's retained events (oldest first); non-nil
	// only with WithEventTrace or WithObserver.
	Events []Event
}

// WorkloadInfo identifies a suite workload.
type WorkloadInfo = workloads.Workload

// Workload looks up a suite workload by name (see Workloads).
func Workload(name string) (WorkloadInfo, bool) { return workloads.ByName(name) }

// Workloads returns the full 202-entry evaluation suite (Table 1).
func Workloads() []WorkloadInfo { return workloads.Suite() }

// QuickWorkloads returns the reduced, category-balanced subset.
func QuickWorkloads() []WorkloadInfo { return workloads.QuickSuite() }

// Simulate runs one workload for n instructions on the Table 2 core under
// the given scheme. With WithTraceFile the stream is replayed from disk at
// fixed memory instead of generated (and n <= 0 means the whole file).
func Simulate(w WorkloadInfo, n int, s Scheme, opts ...Option) (Result, error) {
	var sc simConfig
	for _, o := range opts {
		if o != nil {
			o(&sc)
		}
	}
	if sc.traceFile != "" {
		w.TraceFile = sc.traceFile
	}
	if w.TraceFile != "" {
		if sc.seedSet {
			return Result{}, errors.New("localbp: WithSeed does not apply to a file-replayed trace")
		}
		src, err := w.Open(n)
		if err != nil {
			return Result{}, fmt.Errorf("localbp: %w", err)
		}
		defer trace.CloseSource(src)
		return simulate(src, s, sc)
	}
	if n <= 0 {
		return Result{}, fmt.Errorf("localbp: instruction count %d, want > 0", n)
	}
	if sc.seedSet {
		w.Seed = sc.seed
	}
	return simulate(trace.NewSliceSource(w.Generate(n)), s, sc)
}

// FromSource runs a prepared streaming source under the given scheme: the
// canonical trace entry point. An in-memory source (trace.NewSliceSource)
// takes the resident-program path bit-identically; a file or mmap source
// (OpenTrace) replays at fixed memory. The caller retains ownership of src —
// sources are stateful and single-consumer, so open a fresh one per run and
// release file-backed sources with CloseTrace.
func FromSource(src Source, s Scheme, opts ...Option) (Result, error) {
	if src == nil {
		return Result{}, errors.New("localbp: nil source")
	}
	var sc simConfig
	for _, o := range opts {
		if o != nil {
			o(&sc)
		}
	}
	return simulate(src, s, sc)
}

// SimulateTrace runs a prepared in-memory instruction stream.
//
// Deprecated: use FromSource with trace.NewSliceSource(tr) — or OpenTrace for
// an on-disk trace. SimulateTrace remains as a thin shim and is bit-identical
// to the FromSource path.
func SimulateTrace(tr []trace.Inst, s Scheme, opts ...Option) (Result, error) {
	return FromSource(trace.NewSliceSource(tr), s, opts...)
}

func simulate(src Source, s Scheme, sc simConfig) (Result, error) {
	if s == nil {
		return Result{}, errors.New("localbp: nil scheme")
	}
	sp := s.spec()
	scheme, def, err := schemes.Build(sp.name, sp.opts...)
	if err != nil {
		return Result{}, fmt.Errorf("localbp: %w", err)
	}

	ccfg := core.DefaultConfig()
	ccfg.WarmupInsts = sc.warmup
	ccfg.MaxCycles = sc.maxCycles
	ccfg.Progress = sc.progress
	ccfg.DisableBlockMemo = sc.noMemo

	// Observability hooks: built fresh per run, so concurrent Simulate
	// calls never share registries or tracers.
	hooks := &obs.Hooks{}
	wantObs := false
	if sc.cpistack {
		hooks.CPI = obs.NewCPIStack()
		wantObs = true
	}
	if sc.counters {
		hooks.Reg = obs.NewRegistry()
		wantObs = true
	}
	if sc.traceCap > 0 || sc.observer != nil {
		capacity := sc.traceCap
		if capacity <= 0 {
			capacity = 4096
		}
		hooks.Tracer = obs.NewTracer(capacity)
		hooks.Tracer.Observer = sc.observer
		wantObs = true
	}
	if wantObs {
		ccfg.Obs = hooks
		if scheme != nil {
			// Register the raw scheme before any decorator wraps it: the
			// audit/inject wrappers forward behaviour, not registration.
			repair.AttachObs(scheme, hooks.Reg, hooks.Tracer)
		}
	}

	if sc.auditOn {
		aud := audit.New()
		ccfg.Audit = aud
		if scheme != nil {
			scheme = audit.WrapScheme(scheme, aud)
		}
	}
	if sc.golden {
		tr, ok := trace.SourceSlice(src)
		if !ok {
			return Result{}, errors.New(
				"localbp: WithGolden needs the whole trace in memory; drop it or use an in-memory source")
		}
		ccfg.Golden = audit.NewGolden(tr)
	}

	unit := bpu.NewUnit(tage.KB8(), scheme)
	unit.Oracle = def.Oracle
	c, err := core.NewStream(ccfg, unit, src)
	if err != nil {
		return Result{}, err
	}
	ctx := sc.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	st, err := c.RunContext(ctx)
	if err != nil {
		c.Recycle()
		return Result{}, err
	}
	ov, ovok := unit.OverrideStats()
	res := Result{
		Scheme:      sp.label,
		IPC:         st.IPC(),
		MPKI:        st.MPKI(),
		Cycles:      st.Cycles,
		Insts:       st.Insts,
		Branches:    st.Branches,
		Mispredicts: st.Mispredicts,
		Overrides:   ov,
		OverridesOK: ovok,
		CPI:         hooks.CPI,
	}
	if hooks.Reg != nil {
		res.Counters = hooks.Reg.Snapshot()
	}
	if hooks.Tracer != nil {
		res.Events = hooks.Tracer.Events()
	}
	// All stats (including the registry's "mem" pull source) are snapshotted;
	// the hierarchy's metadata arrays can go back to the pool.
	c.Recycle()
	return res, nil
}

// MustSimulate is Simulate for quick scripts: it panics on error.
//
// Deprecated: use Simulate and handle the error.
func MustSimulate(w WorkloadInfo, n int, s Scheme, opts ...Option) Result {
	res, err := Simulate(w, n, s, opts...)
	if err != nil {
		panic(err)
	}
	return res
}

// MustSimulateTrace is SimulateTrace for quick scripts: it panics on error.
//
// Deprecated: use SimulateTrace and handle the error.
func MustSimulateTrace(tr []trace.Inst, s Scheme, opts ...Option) Result {
	res, err := SimulateTrace(tr, s, opts...)
	if err != nil {
		panic(err)
	}
	return res
}
