// Package localbp reproduces "Towards the adoption of Local Branch
// Predictors in Modern Out-of-Order Superscalar Processors" (Soundararajan
// et al., MICRO-52, 2019): a cycle-level out-of-order core with a TAGE
// baseline predictor, the CBPw-Loop two-level local predictor, and every
// BHT repair scheme the paper studies — perfect, none, update-at-retire,
// snapshot queue, backward/forward walk history files, multi-stage split
// BHT, and limited-PC repair.
//
// This package is the public facade. It wires the building blocks together
// for the common cases:
//
//	w, _ := localbp.Workload("cloud-compression")
//	res := localbp.Simulate(w, 500_000, localbp.ForwardWalk())
//	fmt.Printf("IPC %.2f, MPKI %.2f\n", res.IPC, res.MPKI)
//
// The full component API lives in the internal packages and is exercised by
// the cmd/ tools, the examples/ programs and the experiment harness; see
// DESIGN.md for the architecture and EXPERIMENTS.md for the paper-vs-
// measured results.
package localbp

import (
	"fmt"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/bpu/yehpatt"
	"localbp/internal/core"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// SchemeOption names a local-predictor integration (predictor + repair).
type SchemeOption struct {
	label string
	make  func() repair.Scheme
	// oracle marks the never-mispredicting local predictor of Figure 4.
	oracle bool
}

// Label returns the option's display name.
func (o SchemeOption) Label() string { return o.label }

// BaselineTAGE simulates the TAGE-only baseline (no local predictor).
func BaselineTAGE() SchemeOption { return SchemeOption{label: "tage"} }

// PerfectRepair is the oracle upper bound: unbounded checkpoints, zero-cycle
// repair.
func PerfectRepair() SchemeOption {
	return SchemeOption{label: "perfect", make: func() repair.Scheme {
		return repair.NewPerfect(loop.Loop128())
	}}
}

// NoRepair leaves the speculative BHT state unrepaired (paper §2.7).
func NoRepair() SchemeOption {
	return SchemeOption{label: "no-repair", make: func() repair.Scheme {
		return repair.NewNone(loop.Loop128())
	}}
}

// RetireUpdate defers BHT updates to retirement (paper §6.2).
func RetireUpdate() SchemeOption {
	return SchemeOption{label: "retire-update", make: func() repair.Scheme {
		return repair.NewRetireUpdate(loop.Loop128())
	}}
}

// BackwardWalk is the prior-art history-file repair (BWD-32-4-4).
func BackwardWalk() SchemeOption {
	return SchemeOption{label: "backward-walk", make: func() repair.Scheme {
		return repair.NewBackwardWalk(loop.Loop128(), 32, repair.Ports{CkptRead: 4, BHTWrite: 4})
	}}
}

// ForwardWalk is the paper's headline realistic repair (FWD-32-4-2 with OBQ
// coalescing, §3.1).
func ForwardWalk() SchemeOption {
	return SchemeOption{label: "forward-walk", make: func() repair.Scheme {
		return repair.NewForwardWalk(loop.Loop128(), 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
	}}
}

// MultiStage is the split-BHT two-stage design with a shared PT (§3.2).
func MultiStage() SchemeOption {
	return SchemeOption{label: "multistage", make: func() repair.Scheme {
		return repair.NewMultiStage(loop.Loop128(), 32, true)
	}}
}

// GenericLocal swaps CBPw-Loop for a generic two-level (Yeh-Patt) local
// predictor under forward-walk repair, demonstrating the paper's claim that
// the repair techniques extend to any local predictor design.
func GenericLocal() SchemeOption {
	return SchemeOption{label: "yehpatt-forward", make: func() repair.Scheme {
		return repair.NewForwardWalkFor(yehpatt.New(yehpatt.Default128()),
			32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
	}}
}

// LimitedPC repairs m PCs per misprediction (§3.3).
func LimitedPC(m int) SchemeOption {
	return SchemeOption{label: fmt.Sprintf("limited-%dpc", m), make: func() repair.Scheme {
		return repair.NewLimitedPC(loop.Loop128(), m, 4, false)
	}}
}

// Result summarizes one simulation.
type Result struct {
	Scheme      string
	IPC         float64
	MPKI        float64
	Cycles      int64
	Insts       uint64
	Branches    uint64
	Mispredicts uint64
	// Overrides counts local-predictor overrides of TAGE; OverridesOK the
	// ones confirmed correct on the retired path.
	Overrides, OverridesOK uint64
}

// WorkloadInfo identifies a suite workload.
type WorkloadInfo = workloads.Workload

// Workload looks up a suite workload by name (see Workloads).
func Workload(name string) (WorkloadInfo, bool) { return workloads.ByName(name) }

// Workloads returns the full 202-entry evaluation suite (Table 1).
func Workloads() []WorkloadInfo { return workloads.Suite() }

// QuickWorkloads returns the reduced, category-balanced subset.
func QuickWorkloads() []WorkloadInfo { return workloads.QuickSuite() }

// Simulate runs one workload for n instructions on the Table 2 core under
// the given scheme.
func Simulate(w WorkloadInfo, n int, opt SchemeOption) Result {
	return SimulateTrace(w.Generate(n), opt)
}

// SimulateTrace runs a prepared instruction stream under the given scheme.
func SimulateTrace(tr []trace.Inst, opt SchemeOption) Result {
	var scheme repair.Scheme
	if opt.make != nil {
		scheme = opt.make()
	}
	unit := bpu.NewUnit(tage.KB8(), scheme)
	unit.Oracle = opt.oracle
	c := core.New(core.DefaultConfig(), unit, tr)
	st := c.Run()
	ov, ovok := unit.OverrideStats()
	return Result{
		Scheme:      opt.label,
		IPC:         st.IPC(),
		MPKI:        st.MPKI(),
		Cycles:      st.Cycles,
		Insts:       st.Insts,
		Branches:    st.Branches,
		Mispredicts: st.Mispredicts,
		Overrides:   ov,
		OverridesOK: ovok,
	}
}
